//! Steady-state and absorbing-chain analysis.

use sparsela::iterative::IterOptions;
use sparsela::{vector, CooMatrix, CsrMatrix, DenseMatrix};

use crate::{graph, Ctmc, MarkovError, Result};

/// Chain size at or below which [`SteadyMethod::Auto`] prefers the dense
/// direct solver: the `O(n³)` factorization is cheaper than assembling and
/// iterating a Krylov solve for chains this small.
pub const AUTO_DIRECT_CUTOFF: usize = 64;

/// Method used for steady-state solution of an irreducible CTMC.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SteadyMethod {
    /// Dense LU on `πQ = 0` with one equation replaced by normalization.
    /// Exact; preferred for small chains.
    #[default]
    Direct,
    /// Gauss–Seidel sweeps on `πQ = 0` with per-sweep normalization.
    GaussSeidel {
        /// Iteration budget and tolerance.
        options: IterOptions,
    },
    /// Successive over-relaxation sweeps on `πQ = 0`.
    Sor {
        /// Iteration budget, tolerance, and relaxation factor.
        options: IterOptions,
    },
    /// Power iteration on the uniformized DTMC.
    Power {
        /// Maximum iterations.
        max_iterations: usize,
        /// Convergence tolerance on the ∞-norm of iterate differences.
        tolerance: f64,
    },
    /// Jacobi-preconditioned BiCGStab on `Qᵀπ = 0` with one equation
    /// replaced by normalization. Converges in far fewer matrix products
    /// than the stationary sweeps on stiff chains.
    BiCgStab {
        /// Iteration budget and tolerance (relaxation is ignored).
        options: IterOptions,
    },
    /// Cost-based choice: dense LU for chains up to
    /// [`AUTO_DIRECT_CUTOFF`] states, otherwise Krylov (BiCGStab) with a
    /// Gauss–Seidel sweep as the fallback if the Krylov solve breaks down.
    Auto,
}

/// Computes the long-run (steady-state) distribution of a CTMC.
///
/// The chain must be a **unichain**: exactly one recurrent class (terminal
/// strongly connected component), possibly preceded by transient states.
/// Transient states receive probability zero; the stationary distribution of
/// the recurrent class is embedded into the full state space. An irreducible
/// chain is the special case with no transient states.
///
/// # Errors
///
/// * [`MarkovError::Reducible`] when the chain has more than one terminal
///   strongly connected component (the long-run distribution would depend on
///   the initial state).
/// * [`MarkovError::InvalidModel`] for an empty chain.
/// * Solver-specific failures ([`MarkovError::LinAlg`]).
pub fn steady_state(ctmc: &Ctmc, method: &SteadyMethod) -> Result<Vec<f64>> {
    steady_state_with_hint(ctmc, method, None)
}

/// [`steady_state`] with an optional warm-start hint.
///
/// `hint` is a previous stationary vector over the **full** state space —
/// typically the solution at a neighboring point of a parameter sweep.
/// Iterative methods start from it instead of the uniform distribution,
/// which cuts their iteration count sharply when the hint is close;
/// [`SteadyMethod::Direct`] ignores it. A hint of the wrong length, or one
/// carrying no mass on the recurrent class, is silently discarded — the
/// hint is an accelerator, never a correctness input.
///
/// # Errors
///
/// Same conditions as [`steady_state`].
pub fn steady_state_with_hint(
    ctmc: &Ctmc,
    method: &SteadyMethod,
    hint: Option<&[f64]>,
) -> Result<Vec<f64>> {
    let n = ctmc.n_states();
    if n == 0 {
        return Err(MarkovError::InvalidModel {
            context: "steady state of an empty chain".to_string(),
        });
    }
    let hint = hint.filter(|h| h.len() == n && h.iter().all(|v| v.is_finite() && *v >= 0.0));
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let (component_of, components) = graph::strongly_connected_components(ctmc.generator());
    if components == 1 {
        return solve_irreducible(ctmc, method, hint);
    }

    // Identify terminal components (no outgoing cross-component edges).
    let mut terminal = vec![true; components];
    for (u, v, _) in ctmc.transitions() {
        if component_of[u] != component_of[v] {
            terminal[component_of[u]] = false;
        }
    }
    let terminal_components: Vec<usize> = (0..components).filter(|&c| terminal[c]).collect();
    if terminal_components.len() != 1 {
        return Err(MarkovError::Reducible {
            components: terminal_components.len(),
        });
    }
    let recurrent = terminal_components[0];

    // Restrict to the recurrent class and solve there.
    let class: Vec<usize> = (0..n).filter(|&s| component_of[s] == recurrent).collect();
    if class.len() == 1 {
        let mut pi = vec![0.0; n];
        pi[class[0]] = 1.0;
        return Ok(pi);
    }
    let index_in_class: std::collections::HashMap<usize, usize> =
        class.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let sub_transitions: Vec<(usize, usize, f64)> = ctmc
        .transitions()
        .filter_map(
            |(u, v, r)| match (index_in_class.get(&u), index_in_class.get(&v)) {
                (Some(&iu), Some(&iv)) => Some((iu, iv, r)),
                _ => None,
            },
        )
        .collect();
    let sub = Ctmc::from_transitions(class.len(), sub_transitions)?;
    // Restrict the hint to the recurrent class; it only survives if it
    // still carries normalizable mass there.
    let sub_hint: Option<Vec<f64>> = hint.and_then(|h| {
        let mut restricted: Vec<f64> = class.iter().map(|&s| h[s]).collect();
        let mass: f64 = restricted.iter().sum();
        if mass > 0.0 {
            vector::scale(1.0 / mass, &mut restricted);
            Some(restricted)
        } else {
            None
        }
    });
    let sub_pi = solve_irreducible(&sub, method, sub_hint.as_deref())?;
    let mut pi = vec![0.0; n];
    for (i, &s) in class.iter().enumerate() {
        pi[s] = sub_pi[i];
    }
    Ok(pi)
}

fn solve_irreducible(ctmc: &Ctmc, method: &SteadyMethod, hint: Option<&[f64]>) -> Result<Vec<f64>> {
    match method {
        SteadyMethod::Direct => direct(ctmc),
        SteadyMethod::GaussSeidel { options } => {
            let mut o = options.clone();
            o.relaxation = 1.0;
            sweep(ctmc, &o, hint).map(|(pi, _)| pi)
        }
        SteadyMethod::Sor { options } => sweep(ctmc, options, hint).map(|(pi, _)| pi),
        SteadyMethod::Power {
            max_iterations,
            tolerance,
        } => power(ctmc, *max_iterations, *tolerance, hint),
        SteadyMethod::BiCgStab { options } => bicgstab_steady(ctmc, options, hint),
        SteadyMethod::Auto => {
            if ctmc.n_states() <= AUTO_DIRECT_CUTOFF {
                return direct(ctmc);
            }
            let options = IterOptions::default();
            match bicgstab_steady(ctmc, &options, hint) {
                Ok(pi) => Ok(pi),
                // Krylov breakdown (possible on hard spectra) falls back to
                // the unconditionally convergent Gauss–Seidel sweep.
                Err(MarkovError::LinAlg(_)) => {
                    telemetry::counter("solver.auto_fallback", 1);
                    let mut o = options;
                    o.relaxation = 1.0;
                    sweep(ctmc, &o, hint).map(|(pi, _)| pi)
                }
                Err(e) => Err(e),
            }
        }
    }
}

fn record_steady_solve(method: &str, iterations: usize, final_delta: f64, tolerance: f64) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("solver.solves", 1);
    telemetry::counter(&format!("solver.steady_{method}.solves"), 1);
    if iterations > 0 {
        telemetry::counter("solver.iterations", iterations as u64);
        telemetry::observe("solver.final_delta", final_delta);
        if final_delta > 0.0 {
            telemetry::observe("solver.tolerance_headroom", tolerance / final_delta);
        }
    }
}

/// Initial iterate for the iterative solvers: the (renormalized) hint when
/// one is available and carries mass, the uniform distribution otherwise.
fn start_vector(n: usize, hint: Option<&[f64]>) -> Vec<f64> {
    if let Some(h) = hint {
        let mass: f64 = h.iter().sum();
        if mass > 0.0 {
            let mut x = h.to_vec();
            vector::scale(1.0 / mass, &mut x);
            return x;
        }
    }
    vec![1.0 / n as f64; n]
}

fn direct(ctmc: &Ctmc) -> Result<Vec<f64>> {
    let mut span = telemetry::span("markov.solve.steady");
    telemetry::SolveDiag::new("direct").record_on(&mut span);
    record_steady_solve("direct", 0, 0.0, 0.0);
    let n = ctmc.n_states();
    // Solve Qᵀ x = 0 with the last equation replaced by Σx = 1.
    let mut a = DenseMatrix::zeros(n, n);
    for (r, c, v) in ctmc.generator().iter() {
        a[(c, r)] = v;
    }
    for c in 0..n {
        a[(n - 1, c)] = 1.0;
    }
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let lu = a.lu().map_err(MarkovError::from)?;
    let mut pi = lu.solve(&b).map_err(MarkovError::from)?;
    cleanup(&mut pi);
    Ok(pi)
}

/// Gauss–Seidel / SOR sweeps on the balance equations
/// `π_j · (−q_jj) = Σ_{i≠j} π_i q_ij`.
/// Returns the stationary vector and the number of sweeps it took (the
/// iteration count is what the warm-start tests assert on).
fn sweep(ctmc: &Ctmc, options: &IterOptions, hint: Option<&[f64]>) -> Result<(Vec<f64>, usize)> {
    let n = ctmc.n_states();
    let qt = ctmc.generator().transpose();
    let omega = options.relaxation;
    if !(omega > 0.0 && omega < 2.0) {
        return Err(MarkovError::LinAlg(sparsela::LinAlgError::InvalidValue {
            context: format!("SOR relaxation factor {omega} outside (0, 2)"),
        }));
    }
    let method = if sparsela::vector::approx_eq(omega, 1.0, 0.0) {
        "gauss_seidel"
    } else {
        "sor"
    };
    let mut span = telemetry::span("markov.solve.steady");
    let mut flight = telemetry::SolveDiag::new(method);
    let mut pi = start_vector(n, hint);
    let mut delta = f64::INFINITY;
    for it in 1..=options.max_iterations {
        delta = 0.0;
        for j in 0..n {
            let exit = ctmc.exit_rate(j);
            if exit == 0.0 {
                // Irreducibility was checked; exit 0 can only mean n == 1.
                continue;
            }
            let mut inflow = 0.0;
            for (i, v) in qt.row(j) {
                if i != j {
                    inflow += pi[i] * v;
                }
            }
            let gs = inflow / exit;
            let new = (1.0 - omega) * pi[j] + omega * gs;
            delta = delta.max((new - pi[j]).abs());
            pi[j] = new;
        }
        vector::normalize_l1(&mut pi);
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= options.tolerance && it > 1 {
            telemetry::work::count_iterations(it as u64);
            cleanup(&mut pi);
            flight.iterations = it as u64;
            flight.record_on(&mut span);
            record_steady_solve(method, it, delta, options.tolerance);
            return Ok((pi, it));
        }
    }
    telemetry::work::count_iterations(options.max_iterations as u64);
    flight.iterations = options.max_iterations as u64;
    flight.record_on(&mut span);
    telemetry::counter("solver.not_converged", 1);
    Err(MarkovError::LinAlg(sparsela::LinAlgError::NotConverged {
        iterations: options.max_iterations,
        residual: delta,
        tolerance: options.tolerance,
    }))
}

fn power(
    ctmc: &Ctmc,
    max_iterations: usize,
    tolerance: f64,
    hint: Option<&[f64]>,
) -> Result<Vec<f64>> {
    let n = ctmc.n_states();
    // Inflated Λ puts positive mass on every diagonal, making the
    // uniformized chain aperiodic.
    let lambda = ctmc.max_exit_rate() * 1.05;
    let p = ctmc.uniformized(lambda)?;
    // One blocked layout amortized over every iteration of the power loop.
    let kernel = sparsela::BlockedKernel::from_csr(p.matrix());
    let mut span = telemetry::span("markov.solve.steady");
    let mut flight = telemetry::SolveDiag::new("power");
    flight.uniformization_rate = Some(lambda);
    let mut pi = start_vector(n, hint);
    let mut next = vec![0.0; n];
    let mut delta = f64::INFINITY;
    for it in 1..=max_iterations {
        kernel.apply(&pi, &mut next);
        delta = vector::diff_norm_inf(&pi, &next);
        std::mem::swap(&mut pi, &mut next);
        if telemetry::enabled() {
            flight.push_residual(delta);
        }
        if delta <= tolerance {
            telemetry::work::count_iterations(it as u64);
            vector::normalize_l1(&mut pi);
            cleanup(&mut pi);
            flight.iterations = it as u64;
            flight.spmv_ops = it as u64;
            flight.record_on(&mut span);
            record_steady_solve("power", it, delta, tolerance);
            return Ok(pi);
        }
    }
    telemetry::work::count_iterations(max_iterations as u64);
    flight.iterations = max_iterations as u64;
    flight.spmv_ops = max_iterations as u64;
    flight.record_on(&mut span);
    telemetry::counter("solver.not_converged", 1);
    Err(MarkovError::LinAlg(sparsela::LinAlgError::NotConverged {
        iterations: max_iterations,
        residual: delta,
        tolerance,
    }))
}

/// Krylov steady-state solve: `A·π = e_{n−1}` where `A` is `Qᵀ` with its
/// last row replaced by the normalization equation `Σπ = 1`.
///
/// The system is square and nonsingular for an irreducible chain, and its
/// diagonal (`−` exit rates, plus the `1` in the normalization row) never
/// vanishes, so the Jacobi preconditioner inside [`sparsela::iterative::bicgstab`]
/// is always well defined.
fn bicgstab_steady(ctmc: &Ctmc, options: &IterOptions, hint: Option<&[f64]>) -> Result<Vec<f64>> {
    let n = ctmc.n_states();
    let mut coo = CooMatrix::new(n, n);
    for (r, c, v) in ctmc.generator().iter() {
        // A = Qᵀ: entry (c, r). The normalization equation overwrites row
        // n−1, so Qᵀ entries destined for it are dropped here.
        if c != n - 1 {
            coo.push(c, r, v);
        }
    }
    for j in 0..n {
        coo.push(n - 1, j, 1.0);
    }
    let a = coo.to_csr();
    let mut b = vec![0.0; n];
    b[n - 1] = 1.0;
    let x0 = start_vector(n, hint);
    let mut span = telemetry::span("markov.solve.steady");
    let (mut pi, conv) = sparsela::iterative::bicgstab(&a, &b, &x0, options)?;
    cleanup(&mut pi);
    let mut flight = telemetry::SolveDiag::new("bicgstab");
    flight.iterations = conv.iterations as u64;
    flight.record_on(&mut span);
    record_steady_solve(
        "bicgstab",
        conv.iterations,
        conv.final_delta,
        options.tolerance,
    );
    Ok(pi)
}

fn cleanup(pi: &mut [f64]) {
    for p in pi.iter_mut() {
        if *p < 0.0 && *p > -1e-9 {
            *p = 0.0;
        }
    }
    vector::normalize_l1(pi);
}

/// Result of analysing a CTMC with absorbing states.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsorbingAnalysis {
    /// Transient (non-absorbing) states, ascending.
    pub transient_states: Vec<usize>,
    /// Absorbing states, ascending.
    pub absorbing_states: Vec<usize>,
    /// `absorption_probability[i][j]` — probability that, starting from
    /// `transient_states[i]`, the chain is eventually absorbed in
    /// `absorbing_states[j]`.
    pub absorption_probability: DenseMatrix,
    /// Expected time to absorption from each transient state.
    pub expected_time_to_absorption: Vec<f64>,
}

impl AbsorbingAnalysis {
    /// Absorption probability into `absorbing` starting from the initial
    /// distribution `pi0` over **all** states (mass on absorbing states
    /// counts as already absorbed there).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] on length mismatch and
    /// [`MarkovError::AbsorptionStructure`] when `absorbing` is not an
    /// absorbing state of the analysed chain.
    pub fn absorption_from(&self, pi0: &[f64], absorbing: usize) -> Result<f64> {
        let n = self.transient_states.len() + self.absorbing_states.len();
        if pi0.len() != n {
            return Err(MarkovError::InvalidDistribution {
                context: format!("distribution length {} != {} states", pi0.len(), n),
            });
        }
        let j = self
            .absorbing_states
            .iter()
            .position(|&s| s == absorbing)
            .ok_or_else(|| MarkovError::AbsorptionStructure {
                context: format!("state {absorbing} is not absorbing"),
            })?;
        let mut prob = pi0[absorbing];
        for (i, &s) in self.transient_states.iter().enumerate() {
            prob += pi0[s] * self.absorption_probability[(i, j)];
        }
        Ok(prob)
    }

    /// Expected time to absorption from the initial distribution `pi0`
    /// (time spent already absorbed counts as zero).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] on length mismatch.
    pub fn mean_time_from(&self, pi0: &[f64]) -> Result<f64> {
        let n = self.transient_states.len() + self.absorbing_states.len();
        if pi0.len() != n {
            return Err(MarkovError::InvalidDistribution {
                context: format!("distribution length {} != {} states", pi0.len(), n),
            });
        }
        Ok(self
            .transient_states
            .iter()
            .enumerate()
            .map(|(i, &s)| pi0[s] * self.expected_time_to_absorption[i])
            .sum())
    }
}

/// Analyses a CTMC with absorbing states: absorption probabilities
/// `B = (−Q_TT)⁻¹ Q_TA` and expected times to absorption
/// `τ = (−Q_TT)⁻¹ 1`.
///
/// # Errors
///
/// * [`MarkovError::AbsorptionStructure`] when the chain has no absorbing
///   state, or some transient state cannot reach absorption (the analysis
///   would be ill-posed).
/// * [`MarkovError::LinAlg`] if the dense solve fails.
pub fn absorbing_analysis(ctmc: &Ctmc) -> Result<AbsorbingAnalysis> {
    let absorbing = ctmc.absorbing_states();
    if absorbing.is_empty() {
        return Err(MarkovError::AbsorptionStructure {
            context: "chain has no absorbing states".to_string(),
        });
    }
    let is_absorbing: Vec<bool> = {
        let mut v = vec![false; ctmc.n_states()];
        for &s in &absorbing {
            v[s] = true;
        }
        v
    };
    let transient: Vec<usize> = (0..ctmc.n_states()).filter(|&s| !is_absorbing[s]).collect();

    let reaches = graph::can_reach(ctmc.generator(), &absorbing);
    if let Some(&stuck) = transient.iter().find(|&&s| !reaches[s]) {
        return Err(MarkovError::AbsorptionStructure {
            context: format!("transient state {stuck} cannot reach any absorbing state"),
        });
    }

    let t = transient.len();
    let a = absorbing.len();
    let index_of_transient: std::collections::HashMap<usize, usize> =
        transient.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let index_of_absorbing: std::collections::HashMap<usize, usize> =
        absorbing.iter().enumerate().map(|(j, &s)| (s, j)).collect();

    // Assemble −Q_TT (dense) and Q_TA.
    let mut neg_qtt = DenseMatrix::zeros(t, t);
    let mut qta = DenseMatrix::zeros(t, a);
    for (r, c, v) in ctmc.generator().iter() {
        if let Some(&i) = index_of_transient.get(&r) {
            if let Some(&ic) = index_of_transient.get(&c) {
                neg_qtt[(i, ic)] = -v;
            } else if let Some(&j) = index_of_absorbing.get(&c) {
                qta[(i, j)] = v;
            }
        }
    }

    let lu = neg_qtt.lu().map_err(MarkovError::from)?;

    let mut absorption_probability = DenseMatrix::zeros(t, a);
    let mut rhs = vec![0.0; t];
    for j in 0..a {
        for (i, item) in rhs.iter_mut().enumerate() {
            *item = qta[(i, j)];
        }
        let col = lu.solve(&rhs).map_err(MarkovError::from)?;
        for (i, &v) in col.iter().enumerate() {
            absorption_probability[(i, j)] = v.clamp(0.0, 1.0);
        }
    }

    let expected_time_to_absorption = lu.solve(&vec![1.0; t]).map_err(MarkovError::from)?;

    Ok(AbsorbingAnalysis {
        transient_states: transient,
        absorbing_states: absorbing,
        absorption_probability,
        expected_time_to_absorption,
    })
}

/// Checks the residual `‖π·Q‖∞` of a claimed stationary vector — handy for
/// validating any solver's output.
pub fn stationarity_residual(ctmc: &Ctmc, pi: &[f64]) -> f64 {
    let flow: Vec<f64> = ctmc.generator().mul_vec_transpose(pi);
    vector::norm_inf(&flow)
}

/// Exposes the generator's transpose, which the sweep solvers need; public
/// for benchmark instrumentation.
pub fn generator_transpose(ctmc: &Ctmc) -> CsrMatrix {
    ctmc.generator().transpose()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn birth_death(n: usize, lambda: f64, mu: f64) -> Ctmc {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i + 1, lambda));
            t.push((i + 1, i, mu));
        }
        Ctmc::from_transitions(n, t).unwrap()
    }

    /// Closed-form M/M/1/K distribution with utilisation ρ = λ/µ.
    fn mm1k(n: usize, lambda: f64, mu: f64) -> Vec<f64> {
        let rho: f64 = lambda / mu;
        let z: f64 = (0..n).map(|i| rho.powi(i as i32)).sum();
        (0..n).map(|i| rho.powi(i as i32) / z).collect()
    }

    #[test]
    fn direct_matches_birth_death_closed_form() {
        let c = birth_death(5, 2.0, 3.0);
        let pi = steady_state(&c, &SteadyMethod::Direct).unwrap();
        let want = mm1k(5, 2.0, 3.0);
        for (a, b) in pi.iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!(stationarity_residual(&c, &pi) < 1e-12);
    }

    #[test]
    fn all_methods_agree() {
        let c = birth_death(6, 1.0, 1.5);
        let d = steady_state(&c, &SteadyMethod::Direct).unwrap();
        let g = steady_state(
            &c,
            &SteadyMethod::GaussSeidel {
                options: IterOptions::default(),
            },
        )
        .unwrap();
        let sor_opts = IterOptions {
            relaxation: 1.2,
            ..Default::default()
        };
        let s = steady_state(&c, &SteadyMethod::Sor { options: sor_opts }).unwrap();
        let p = steady_state(
            &c,
            &SteadyMethod::Power {
                max_iterations: 200_000,
                tolerance: 1e-14,
            },
        )
        .unwrap();
        for other in [&g, &s, &p] {
            assert!(vector::diff_norm_inf(&d, other) < 1e-8);
        }
    }

    #[test]
    fn bicgstab_matches_direct() {
        let c = birth_death(12, 2.0, 3.0);
        let d = steady_state(&c, &SteadyMethod::Direct).unwrap();
        let opts = IterOptions {
            tolerance: 1e-12,
            ..Default::default()
        };
        let k = steady_state(&c, &SteadyMethod::BiCgStab { options: opts }).unwrap();
        assert!(vector::diff_norm_inf(&d, &k) < 1e-9);
        assert!(stationarity_residual(&c, &k) < 1e-9);
    }

    #[test]
    fn auto_uses_direct_on_small_and_krylov_on_large() {
        let small = birth_death(6, 1.0, 2.0);
        let a = steady_state(&small, &SteadyMethod::Auto).unwrap();
        let d = steady_state(&small, &SteadyMethod::Direct).unwrap();
        assert_eq!(a, d);

        let large = birth_death(AUTO_DIRECT_CUTOFF + 20, 1.0, 1.1);
        let a = steady_state(&large, &SteadyMethod::Auto).unwrap();
        let d = steady_state(&large, &SteadyMethod::Direct).unwrap();
        assert!(vector::diff_norm_inf(&a, &d) < 1e-8);
    }

    #[test]
    fn warm_start_hint_cuts_sweep_iterations() {
        let c = birth_death(40, 1.0, 1.2);
        let exact = steady_state(&c, &SteadyMethod::Direct).unwrap();
        let opts = IterOptions {
            tolerance: 1e-12,
            relaxation: 1.0,
            ..Default::default()
        };
        let (cold_pi, cold) = sweep(&c, &opts, None).unwrap();
        assert!(vector::diff_norm_inf(&cold_pi, &exact) < 1e-8);
        let (warm_pi, warm) = sweep(&c, &opts, Some(&exact)).unwrap();
        assert!(vector::diff_norm_inf(&warm_pi, &exact) < 1e-8);
        assert!(
            warm < cold,
            "warm start took {warm} iterations vs cold {cold}"
        );
    }

    #[test]
    fn degenerate_hints_are_discarded() {
        let c = birth_death(5, 2.0, 3.0);
        let want = steady_state(&c, &SteadyMethod::Direct).unwrap();
        let method = SteadyMethod::GaussSeidel {
            options: IterOptions::default(),
        };
        for bad in [
            vec![0.0; 5],                   // no mass
            vec![0.25; 4],                  // wrong length
            vec![f64::NAN; 5],              // non-finite
            vec![-1.0, 1.0, 0.0, 0.0, 0.0], // negative entries
        ] {
            let pi = steady_state_with_hint(&c, &method, Some(&bad)).unwrap();
            assert!(vector::diff_norm_inf(&pi, &want) < 1e-8);
        }
    }

    #[test]
    fn hint_survives_unichain_reduction() {
        // State 0 is transient; hint mass on it must be redistributed.
        let c = Ctmc::from_transitions(3, [(0, 1, 5.0), (1, 2, 1.0), (2, 1, 3.0)]).unwrap();
        let hint = [0.5, 0.4, 0.1];
        let method = SteadyMethod::GaussSeidel {
            options: IterOptions::default(),
        };
        let pi = steady_state_with_hint(&c, &method, Some(&hint)).unwrap();
        assert!(pi[0].abs() < 1e-10);
        assert!((pi[1] - 0.75).abs() < 1e-8);
        assert!((pi[2] - 0.25).abs() < 1e-8);
    }

    #[test]
    fn two_terminal_classes_rejected() {
        // {0,1} is one recurrent class; isolated state 2 is another.
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            steady_state(&c, &SteadyMethod::Direct),
            Err(MarkovError::Reducible { components: 2 })
        ));
    }

    #[test]
    fn unichain_with_transient_prefix() {
        // 0 → {1, 2} cycle: state 0 is transient, long-run mass sits on the
        // 1 <-> 2 cycle with rates 1 and 3 ⇒ π = (0, 3/4, 1/4).
        let c = Ctmc::from_transitions(3, [(0, 1, 5.0), (1, 2, 1.0), (2, 1, 3.0)]).unwrap();
        for method in [
            SteadyMethod::Direct,
            SteadyMethod::Power {
                max_iterations: 100_000,
                tolerance: 1e-13,
            },
        ] {
            let pi = steady_state(&c, &method).unwrap();
            assert!(pi[0].abs() < 1e-10);
            assert!((pi[1] - 0.75).abs() < 1e-9);
            assert!((pi[2] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn unichain_into_absorbing_state() {
        // All mass eventually in the absorbing state 2.
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let pi = steady_state(&c, &SteadyMethod::Direct).unwrap();
        assert_eq!(pi, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn single_state_chain() {
        let c = Ctmc::from_transitions(1, std::iter::empty()).unwrap();
        assert_eq!(steady_state(&c, &SteadyMethod::Direct).unwrap(), vec![1.0]);
    }

    #[test]
    fn periodic_chain_power_still_converges() {
        // 0 <-> 1 with equal rates: uniformized chain would be periodic
        // without Λ inflation.
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = steady_state(
            &c,
            &SteadyMethod::Power {
                max_iterations: 100_000,
                tolerance: 1e-13,
            },
        )
        .unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn absorbing_analysis_pure_death() {
        // 0 -> 1 -> 2(absorbing) at rate 1: time to absorption = 2.
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let a = absorbing_analysis(&c).unwrap();
        assert_eq!(a.transient_states, vec![0, 1]);
        assert_eq!(a.absorbing_states, vec![2]);
        assert!((a.absorption_probability[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((a.expected_time_to_absorption[0] - 2.0).abs() < 1e-12);
        assert!((a.expected_time_to_absorption[1] - 1.0).abs() < 1e-12);
        assert!((a.mean_time_from(&[1.0, 0.0, 0.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn absorbing_analysis_competing_risks() {
        // 0 -> 1 at rate a, 0 -> 2 at rate b: P[absorb in 1] = a/(a+b).
        let (a_rate, b_rate) = (2.0, 6.0);
        let c = Ctmc::from_transitions(3, [(0, 1, a_rate), (0, 2, b_rate)]).unwrap();
        let an = absorbing_analysis(&c).unwrap();
        let p1 = an.absorption_from(&[1.0, 0.0, 0.0], 1).unwrap();
        let p2 = an.absorption_from(&[1.0, 0.0, 0.0], 2).unwrap();
        assert!((p1 - 0.25).abs() < 1e-12);
        assert!((p2 - 0.75).abs() < 1e-12);
        assert!((an.mean_time_from(&[1.0, 0.0, 0.0]).unwrap() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn absorbing_mass_already_absorbed_counts() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        let an = absorbing_analysis(&c).unwrap();
        let p = an.absorption_from(&[0.0, 1.0], 1).unwrap();
        assert_eq!(p, 1.0);
        assert_eq!(an.mean_time_from(&[0.0, 1.0]).unwrap(), 0.0);
    }

    #[test]
    fn no_absorbing_states_rejected() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(matches!(
            absorbing_analysis(&c),
            Err(MarkovError::AbsorptionStructure { .. })
        ));
    }

    #[test]
    fn unreachable_absorption_rejected() {
        // States {0,1} form a recurrent class; 2 -> 3 absorbing.
        let c = Ctmc::from_transitions(4, [(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            absorbing_analysis(&c),
            Err(MarkovError::AbsorptionStructure { .. })
        ));
    }

    #[test]
    fn wrong_absorbing_state_query_errors() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        let an = absorbing_analysis(&c).unwrap();
        assert!(an.absorption_from(&[1.0, 0.0], 0).is_err());
        assert!(an.absorption_from(&[1.0], 1).is_err());
        assert!(an.mean_time_from(&[1.0]).is_err());
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// A random irreducible generator: a rate-carrying Hamiltonian cycle
        /// guarantees irreducibility, extra random edges roughen the
        /// structure.
        fn irreducible_ctmc(n: usize, cycle_rates: &[f64], extras: &[(usize, usize, f64)]) -> Ctmc {
            let mut t: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, (i + 1) % n, cycle_rates[i])).collect();
            for &(u, v, r) in extras {
                if u != v {
                    t.push((u % n, v % n, r));
                }
            }
            Ctmc::from_transitions(n, t).unwrap()
        }

        proptest! {
            /// BiCGStab agrees with the dense direct solver and with
            /// Gauss–Seidel on random irreducible generators (ISSUE 8
            /// satellite).
            #[test]
            fn bicgstab_agrees_with_direct_and_sweeps(
                cycle_rates in proptest::collection::vec(0.1..5.0f64, 8),
                extras in proptest::collection::vec(
                    (0usize..8, 0usize..8, 0.05..3.0f64), 0..20),
            ) {
                let c = irreducible_ctmc(8, &cycle_rates, &extras);
                let d = steady_state(&c, &SteadyMethod::Direct).unwrap();
                let opts = IterOptions {
                    tolerance: 1e-13,
                    ..Default::default()
                };
                let k = steady_state(
                    &c,
                    &SteadyMethod::BiCgStab { options: opts.clone() },
                ).unwrap();
                prop_assert!(vector::diff_norm_inf(&d, &k) < 1e-8);
                let g = steady_state(
                    &c,
                    &SteadyMethod::GaussSeidel { options: opts },
                ).unwrap();
                prop_assert!(vector::diff_norm_inf(&g, &k) < 1e-7);
            }
        }
    }
}
