//! Discrete-time Markov chains.

use sparsela::{CooMatrix, CsrMatrix};

use crate::{MarkovError, Result};

/// A discrete-time Markov chain stored as its (row-)stochastic transition
/// matrix.
///
/// Used directly for discrete models and as the uniformized embedding of a
/// [`Ctmc`](crate::Ctmc) inside the transient solvers.
///
/// # Example
///
/// ```
/// use markov::Dtmc;
///
/// # fn main() -> Result<(), markov::MarkovError> {
/// let p = Dtmc::from_rows(2, [(0, 1, 1.0), (1, 0, 0.25), (1, 1, 0.75)])?;
/// let pi1 = p.step(&[1.0, 0.0]);
/// assert_eq!(pi1, vec![0.0, 1.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmc {
    p: CsrMatrix,
}

impl Dtmc {
    /// Builds a chain over states `0..n` from `(from, to, probability)`
    /// triplets; duplicates are summed.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when indices are out of range,
    /// probabilities are negative or non-finite, or some row does not sum to
    /// 1 within `1e-9` (rows with no entries are treated as absorbing and
    /// get an implicit self-loop).
    pub fn from_rows<I>(n: usize, transitions: I) -> Result<Self>
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut coo = CooMatrix::new(n, n);
        let mut row_sum = vec![0.0f64; n];
        for (from, to, p) in transitions {
            if from >= n || to >= n {
                return Err(MarkovError::InvalidModel {
                    context: format!("transition ({from} -> {to}) outside 0..{n}"),
                });
            }
            if !p.is_finite() || p < 0.0 {
                return Err(MarkovError::InvalidModel {
                    context: format!("transition ({from} -> {to}) has invalid probability {p}"),
                });
            }
            coo.push(from, to, p);
            row_sum[from] += p;
        }
        for (s, &sum) in row_sum.iter().enumerate() {
            if sum == 0.0 {
                coo.push(s, s, 1.0); // absorbing
            } else if (sum - 1.0).abs() > 1e-9 {
                return Err(MarkovError::InvalidModel {
                    context: format!("row {s} sums to {sum}, expected 1"),
                });
            }
        }
        Ok(Dtmc { p: coo.to_csr() })
    }

    /// Wraps an existing stochastic matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] when the matrix is not square,
    /// has negative entries, or has rows not summing to 1 within `1e-9`.
    pub fn from_matrix(p: CsrMatrix) -> Result<Self> {
        if p.rows() != p.cols() {
            return Err(MarkovError::InvalidModel {
                context: format!(
                    "transition matrix must be square, got {}x{}",
                    p.rows(),
                    p.cols()
                ),
            });
        }
        for (r, c, v) in p.iter() {
            if !v.is_finite() || v < 0.0 {
                return Err(MarkovError::InvalidModel {
                    context: format!("entry ({r}, {c}) = {v} is not a probability"),
                });
            }
        }
        for (r, s) in p.row_sums().into_iter().enumerate() {
            if (s - 1.0).abs() > 1e-9 {
                return Err(MarkovError::InvalidModel {
                    context: format!("row {r} sums to {s}, expected 1"),
                });
            }
        }
        Ok(Dtmc { p })
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.p.rows()
    }

    /// The transition matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.p
    }

    /// One step of the chain: `π' = π · P`.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len() != self.n_states()`.
    pub fn step(&self, pi: &[f64]) -> Vec<f64> {
        self.p.mul_vec_transpose(pi)
    }

    /// One step into a caller-provided buffer (overwritten).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn step_into(&self, pi: &[f64], out: &mut [f64]) {
        self.p.mul_vec_transpose_into(pi, out);
    }

    /// Distribution after `k` steps from `pi0`.
    ///
    /// # Panics
    ///
    /// Panics if `pi0.len() != self.n_states()`.
    pub fn steps(&self, pi0: &[f64], k: usize) -> Vec<f64> {
        let mut cur = pi0.to_vec();
        let mut next = vec![0.0; cur.len()];
        for _ in 0..k {
            self.step_into(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Stationary distribution by damped power iteration.
    ///
    /// The damping (`π ← (1−θ)·π·P + θ·π` with θ = 0.05) makes the
    /// iteration converge even for periodic chains without changing the
    /// fixed point.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::Reducible`] when the chain has several closed
    ///   communicating classes (non-unique stationary distribution).
    /// * [`MarkovError::LinAlg`] when the iteration budget is exhausted.
    pub fn steady_state(&self, max_iterations: usize, tolerance: f64) -> Result<Vec<f64>> {
        let n = self.n_states();
        if n == 0 {
            return Err(MarkovError::InvalidModel {
                context: "steady state of an empty chain".to_string(),
            });
        }
        // Uniqueness: exactly one terminal SCC.
        let (component_of, components) = crate::graph::strongly_connected_components(&self.p);
        let mut terminal = vec![true; components];
        for (u, v, w) in self.p.iter() {
            if w > 0.0 && component_of[u] != component_of[v] {
                terminal[component_of[u]] = false;
            }
        }
        let terminal_count = terminal.iter().filter(|&&t| t).count();
        if terminal_count != 1 {
            return Err(MarkovError::Reducible {
                components: terminal_count,
            });
        }
        let damping = 0.05;
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        let mut delta = f64::INFINITY;
        for _ in 0..max_iterations {
            self.step_into(&pi, &mut next);
            for (nx, &old) in next.iter_mut().zip(&pi) {
                *nx = (1.0 - damping) * *nx + damping * old;
            }
            delta = sparsela::vector::diff_norm_inf(&pi, &next);
            std::mem::swap(&mut pi, &mut next);
            if delta <= tolerance {
                sparsela::vector::normalize_l1(&mut pi);
                return Ok(pi);
            }
        }
        Err(MarkovError::LinAlg(sparsela::LinAlgError::NotConverged {
            iterations: max_iterations,
            residual: delta,
            tolerance,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absorbing_rows_get_self_loops() {
        let p = Dtmc::from_rows(2, [(0, 1, 1.0)]).unwrap();
        assert_eq!(p.matrix().get(1, 1), 1.0);
    }

    #[test]
    fn bad_rows_rejected() {
        assert!(Dtmc::from_rows(2, [(0, 1, 0.5)]).is_err()); // sums to 0.5
        assert!(Dtmc::from_rows(2, [(0, 1, -0.5), (0, 0, 1.5)]).is_err());
        assert!(Dtmc::from_rows(1, [(0, 1, 1.0)]).is_err());
    }

    #[test]
    fn from_matrix_validates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.5);
        coo.push(0, 1, 0.5);
        coo.push(1, 1, 1.0);
        assert!(Dtmc::from_matrix(coo.to_csr()).is_ok());

        let mut bad = CooMatrix::new(2, 2);
        bad.push(0, 0, 0.9);
        bad.push(1, 1, 1.0);
        assert!(Dtmc::from_matrix(bad.to_csr()).is_err());
    }

    #[test]
    fn step_preserves_mass() {
        let p = Dtmc::from_rows(3, [(0, 1, 0.5), (0, 2, 0.5), (1, 0, 1.0), (2, 2, 1.0)]).unwrap();
        let pi = p.step(&[0.2, 0.3, 0.5]);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(pi, vec![0.3, 0.1, 0.6]);
    }

    #[test]
    fn multi_step_periodic_chain() {
        // Period-2 chain: 0 <-> 1.
        let p = Dtmc::from_rows(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(p.steps(&[1.0, 0.0], 2), vec![1.0, 0.0]);
        assert_eq!(p.steps(&[1.0, 0.0], 3), vec![0.0, 1.0]);
        assert_eq!(p.steps(&[1.0, 0.0], 0), vec![1.0, 0.0]);
    }

    #[test]
    fn steady_state_of_two_state_chain() {
        let p = Dtmc::from_rows(2, [(0, 0, 0.7), (0, 1, 0.3), (1, 0, 0.6), (1, 1, 0.4)]).unwrap();
        let pi = p.steady_state(100_000, 1e-13).unwrap();
        // π0·0.3 = π1·0.6 ⇒ π = (2/3, 1/3).
        assert!((pi[0] - 2.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_of_periodic_chain_converges_via_damping() {
        let p = Dtmc::from_rows(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let pi = p.steady_state(100_000, 1e-12).unwrap();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn steady_state_rejects_two_absorbing_states() {
        let p = Dtmc::from_rows(3, [(0, 1, 0.5), (0, 2, 0.5)]).unwrap();
        assert!(matches!(
            p.steady_state(1000, 1e-9),
            Err(MarkovError::Reducible { components: 2 })
        ));
    }

    #[test]
    fn steady_state_with_transient_prefix() {
        let p = Dtmc::from_rows(3, [(0, 1, 1.0), (1, 1, 0.5), (1, 2, 0.5), (2, 1, 1.0)]).unwrap();
        let pi = p.steady_state(100_000, 1e-13).unwrap();
        assert!(pi[0].abs() < 1e-6);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-6);
        assert!((pi[2] - 1.0 / 3.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn random_walk_stays_stochastic(
            stay in 0.0..1.0f64,
            k in 0usize..50,
        ) {
            let p = Dtmc::from_rows(3, [
                (0, 0, stay), (0, 1, 1.0 - stay),
                (1, 0, 0.3), (1, 2, 0.7),
                (2, 1, 1.0),
            ]).unwrap();
            let pi = p.steps(&[1.0, 0.0, 0.0], k);
            prop_assert!(sparsela::vector::is_stochastic(&pi, 1e-9));
        }
    }
}
