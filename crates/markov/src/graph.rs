//! Graph algorithms on the transition structure of a chain.
//!
//! Used to validate solver preconditions: steady-state analysis needs an
//! irreducible chain (single strongly connected component), absorbing
//! analysis needs every transient state to reach an absorbing one.

use sparsela::CsrMatrix;

/// Computes the strongly connected components of the directed graph whose
/// adjacency is the non-zero off-diagonal pattern of `m`.
///
/// Returns `(component_of, count)`: `component_of[v]` is the component index
/// of vertex `v`, with components numbered in reverse topological order
/// (an edge `u → v` between different components implies
/// `component_of[u] > component_of[v]`).
///
/// Implementation: iterative Tarjan (explicit stack), so deep chains cannot
/// overflow the call stack.
pub fn strongly_connected_components(m: &CsrMatrix) -> (Vec<usize>, usize) {
    let n = m.rows();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![UNVISITED; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut count = 0usize;

    // Explicit DFS frames: (vertex, iterator position into its row).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            // Find next unprocessed off-diagonal successor of v.
            let succ = {
                let mut found = None;
                let neighbors: Vec<usize> = m
                    .row(v)
                    .filter(|&(c, w)| c != v && w != 0.0)
                    .map(|(c, _)| c)
                    .collect();
                while *pos < neighbors.len() {
                    let w = neighbors[*pos];
                    *pos += 1;
                    if index[w] == UNVISITED {
                        found = Some(w);
                        break;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                found
            };

            match succ {
                Some(w) => {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                }
                None => {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        // v is the root of an SCC; it is on the stack, so
                        // the pop loop always terminates at it.
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            component[w] = count;
                            if w == v {
                                break;
                            }
                        }
                        count += 1;
                    }
                }
            }
        }
    }

    (component, count)
}

/// Returns `true` when the off-diagonal transition graph of `m` is strongly
/// connected (i.e. the chain is irreducible).
pub fn is_irreducible(m: &CsrMatrix) -> bool {
    if m.rows() == 0 {
        return false;
    }
    strongly_connected_components(m).1 == 1
}

/// Vertices reachable from `start` (inclusive) following non-zero
/// off-diagonal entries.
pub fn reachable_from(m: &CsrMatrix, start: usize) -> Vec<bool> {
    let n = m.rows();
    let mut seen = vec![false; n];
    if start >= n {
        return seen;
    }
    let mut queue = std::collections::VecDeque::new();
    seen[start] = true;
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for (c, w) in m.row(v) {
            if c != v && w != 0.0 && !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    seen
}

/// Vertices from which some vertex in `targets` is reachable (inclusive).
///
/// Used to check that every transient state can reach absorption.
pub fn can_reach(m: &CsrMatrix, targets: &[usize]) -> Vec<bool> {
    let t = m.transpose();
    let n = m.rows();
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in targets {
        if s < n && !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        for (c, w) in t.row(v) {
            if c != v && w != 0.0 && !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparsela::CooMatrix;

    fn graph(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn single_cycle_is_one_scc() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 1);
        assert!(is_irreducible(&g));
    }

    #[test]
    fn chain_is_n_sccs() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 4);
        // Reverse topological numbering: sink gets the smallest index.
        assert!(comp[0] > comp[1]);
        assert!(comp[1] > comp[2]);
        assert!(comp[2] > comp[3]);
        assert!(!is_irreducible(&g));
    }

    #[test]
    fn two_cycles_bridged() {
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(comp[0] > comp[2]); // edge from {0,1} into {2,3}
    }

    #[test]
    fn self_loops_are_ignored() {
        let g = graph(2, &[(0, 0), (1, 1)]);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_graph() {
        let g = CsrMatrix::zeros(0, 0);
        let (comp, count) = strongly_connected_components(&g);
        assert_eq!(count, 0);
        assert!(comp.is_empty());
        assert!(!is_irreducible(&g));
    }

    #[test]
    fn reachable_follows_edges() {
        let g = graph(4, &[(0, 1), (1, 2)]);
        let r = reachable_from(&g, 0);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn can_reach_traverses_backwards() {
        let g = graph(4, &[(0, 1), (1, 2), (3, 3)]);
        let r = can_reach(&g, &[2]);
        assert_eq!(r, vec![true, true, true, false]);
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-vertex path — recursive Tarjan would blow the stack.
        let n = 100_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = graph(n, &edges);
        let (_, count) = strongly_connected_components(&g);
        assert_eq!(count, n);
    }
}
