//! Reward variables on Markov models (UltraSAN-style).
//!
//! A [`RewardStructure`] pairs a **rate reward** with every state (reward
//! accrues at that rate while the chain sojourns in the state) and an
//! optional **impulse reward** with transitions (reward earned instantly at
//! each transition). The three reward variables the DSN 2002 study uses are:
//!
//! * expected **instant-of-time** reward at `t`: `Σ_s r(s)·π_s(t)`
//!   ([`RewardStructure::instant`] applied to a transient distribution);
//! * expected **accumulated interval-of-time** reward over `[0, t]`:
//!   `Σ_s r(s)·L_s(t) + Σ_{i→j} ρ(i,j)·q_ij·L_i(t)`
//!   ([`RewardStructure::accumulated`] applied to the occupancy vector);
//! * expected **steady-state** reward: `Σ_s r(s)·π_s(∞)`
//!   ([`RewardStructure::instant`] applied to a stationary distribution).

use std::collections::BTreeMap;

use crate::{Ctmc, MarkovError, Result};

/// Rate rewards per state plus optional impulse rewards per transition.
///
/// # Example
///
/// ```
/// use markov::reward::RewardStructure;
///
/// // Reward 1 in state 0, 0 elsewhere: expected reward = P[state 0].
/// let r = RewardStructure::from_rates(vec![1.0, 0.0]);
/// assert_eq!(r.instant(&[0.25, 0.75]), 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RewardStructure {
    rates: Vec<f64>,
    // BTreeMap, not HashMap: `steady_rate`/`accumulated` sum over the
    // impulse entries, and a float sum over hash order would differ between
    // otherwise-identical processes. Key order makes the sums reproducible.
    impulses: BTreeMap<(usize, usize), f64>,
}

impl RewardStructure {
    /// Builds a structure with the given per-state rate rewards and no
    /// impulse rewards.
    pub fn from_rates(rates: Vec<f64>) -> Self {
        RewardStructure {
            rates,
            impulses: BTreeMap::new(),
        }
    }

    /// Builds a structure assigning rate `rate` to every state in `states`
    /// (zero elsewhere) over a space of `n` states.
    ///
    /// # Panics
    ///
    /// Panics if some state index is `>= n`.
    pub fn indicator(n: usize, states: &[usize], rate: f64) -> Self {
        let mut rates = vec![0.0; n];
        for &s in states {
            assert!(s < n, "indicator state {s} out of range 0..{n}");
            rates[s] = rate;
        }
        RewardStructure::from_rates(rates)
    }

    /// Adds (accumulates) an impulse reward on the transition `from → to`.
    pub fn with_impulse(mut self, from: usize, to: usize, reward: f64) -> Self {
        *self.impulses.entry((from, to)).or_insert(0.0) += reward;
        self
    }

    /// Number of states the structure is defined over.
    pub fn n_states(&self) -> usize {
        self.rates.len()
    }

    /// The per-state rate rewards.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// `true` when impulse rewards are present.
    pub fn has_impulses(&self) -> bool {
        !self.impulses.is_empty()
    }

    /// The impulse reward attached to the transition `from → to` (zero when
    /// none is defined).
    pub fn impulse(&self, from: usize, to: usize) -> f64 {
        self.impulses.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// Expected instant-of-time (or steady-state) reward under the state
    /// distribution `pi`. Impulse rewards do not contribute to
    /// instant-of-time variables.
    ///
    /// # Panics
    ///
    /// Panics if `pi.len()` differs from the structure's state count.
    pub fn instant(&self, pi: &[f64]) -> f64 {
        assert_eq!(pi.len(), self.rates.len(), "instant: length mismatch");
        sparsela::vector::dot(&self.rates, pi)
    }

    /// Expected steady-state reward rate including impulse throughput:
    /// `Σ_s r(s)·π_s + Σ_{i→j} ρ(i,j)·q_ij·π_i`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] when `pi` does not match
    /// the chain, or [`MarkovError::InvalidModel`] when the structure's state
    /// count differs from the chain's.
    pub fn steady_rate(&self, ctmc: &Ctmc, pi: &[f64]) -> Result<f64> {
        self.check_against(ctmc)?;
        ctmc.check_distribution(pi)?;
        let mut total = self.instant(pi);
        for (&(i, j), &rho) in &self.impulses {
            total += rho * ctmc.generator().get(i, j) * pi[i];
        }
        Ok(total)
    }

    /// Expected accumulated reward over `[0, t]` given the occupancy vector
    /// `l = L(t)` (from [`crate::transient::occupancy`]):
    /// rate part `Σ_s r(s)·L_s(t)` plus impulse part
    /// `Σ_{i→j} ρ(i,j)·q_ij·L_i(t)` (expected transition counts).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] on a state-count mismatch with
    /// the chain or occupancy vector.
    pub fn accumulated(&self, ctmc: &Ctmc, l: &[f64]) -> Result<f64> {
        self.check_against(ctmc)?;
        if l.len() != self.rates.len() {
            return Err(MarkovError::InvalidModel {
                context: format!(
                    "occupancy length {} does not match {} states",
                    l.len(),
                    self.rates.len()
                ),
            });
        }
        let mut total = sparsela::vector::dot(&self.rates, l);
        for (&(i, j), &rho) in &self.impulses {
            total += rho * ctmc.generator().get(i, j) * l[i];
        }
        Ok(total)
    }

    /// Expected **time-averaged** interval-of-time reward over `[0, t]`:
    /// the accumulated reward divided by the interval length (the third
    /// reward-variable class of Sanders & Meyer's unified specification).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidModel`] for a non-positive interval or
    /// on state-count mismatches.
    pub fn time_averaged(&self, ctmc: &Ctmc, l: &[f64], t: f64) -> Result<f64> {
        if !t.is_finite() || t <= 0.0 {
            return Err(MarkovError::InvalidModel {
                context: format!("time-averaged reward needs t > 0, got {t}"),
            });
        }
        Ok(self.accumulated(ctmc, l)? / t)
    }

    fn check_against(&self, ctmc: &Ctmc) -> Result<()> {
        if ctmc.n_states() != self.rates.len() {
            return Err(MarkovError::InvalidModel {
                context: format!(
                    "reward structure over {} states applied to chain with {}",
                    self.rates.len(),
                    ctmc.n_states()
                ),
            });
        }
        for &(i, j) in self.impulses.keys() {
            if i >= ctmc.n_states() || j >= ctmc.n_states() {
                return Err(MarkovError::InvalidModel {
                    context: format!("impulse on ({i} -> {j}) outside state space"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{self, Options};

    #[test]
    fn indicator_builds_correct_rates() {
        let r = RewardStructure::indicator(4, &[1, 3], 2.0);
        assert_eq!(r.rates(), &[0.0, 2.0, 0.0, 2.0]);
        assert_eq!(r.n_states(), 4);
        assert!(!r.has_impulses());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indicator_rejects_bad_state() {
        RewardStructure::indicator(2, &[5], 1.0);
    }

    #[test]
    fn instant_reward_is_dot_product() {
        let r = RewardStructure::from_rates(vec![1.0, 10.0]);
        assert_eq!(r.instant(&[0.5, 0.5]), 5.5);
    }

    #[test]
    fn impulse_throughput_at_steady_state() {
        // Two-state cycle, rates 2 and 3: π = (0.6, 0.4). Impulse 1 on
        // 0 -> 1 gives throughput π_0·q_01 = 1.2.
        let c = Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let pi = crate::steady::steady_state(&c, &Default::default()).unwrap();
        let r = RewardStructure::from_rates(vec![0.0, 0.0]).with_impulse(0, 1, 1.0);
        let rate = r.steady_rate(&c, &pi).unwrap();
        assert!((rate - 1.2).abs() < 1e-12);
    }

    #[test]
    fn accumulated_counts_expected_transitions() {
        // Pure death 0 -> 1, rate µ: expected number of 0→1 transitions by
        // time t is P[T ≤ t]; with impulse 1 the accumulated impulse reward
        // must equal 1 − e^{−µt}.
        let mu = 0.7;
        let c = Ctmc::from_transitions(2, [(0, 1, mu)]).unwrap();
        let t = 2.0;
        let l = transient::occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
        let r = RewardStructure::from_rates(vec![0.0, 0.0]).with_impulse(0, 1, 1.0);
        let got = r.accumulated(&c, &l).unwrap();
        let want = 1.0 - (-mu * t).exp();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn accumulated_rate_reward_is_occupancy_weighted() {
        let mu = 0.5;
        let c = Ctmc::from_transitions(2, [(0, 1, mu)]).unwrap();
        let t = 3.0;
        let l = transient::occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
        // Reward 1 while in state 0: expected up-time = (1 − e^{−µt})/µ.
        let r = RewardStructure::indicator(2, &[0], 1.0);
        let got = r.accumulated(&c, &l).unwrap();
        let want = (1.0 - (-mu * t).exp()) / mu;
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn time_averaged_converges_to_steady_reward() {
        let c = Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap();
        let r = RewardStructure::from_rates(vec![1.0, 0.0]);
        let t = 200.0;
        let l = transient::occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
        let avg = r.time_averaged(&c, &l, t).unwrap();
        // Steady-state fraction in state 0 is 0.6.
        assert!((avg - 0.6).abs() < 0.01, "avg = {avg}");
        assert!(r.time_averaged(&c, &l, 0.0).is_err());
        assert!(r.time_averaged(&c, &l, f64::NAN).is_err());
    }

    #[test]
    fn duplicate_impulses_accumulate() {
        let r = RewardStructure::from_rates(vec![0.0, 0.0])
            .with_impulse(0, 1, 1.0)
            .with_impulse(0, 1, 2.0);
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let rate = r.steady_rate(&c, &[0.5, 0.5]).unwrap();
        assert!((rate - 1.5).abs() < 1e-12);
    }

    #[test]
    fn mismatched_sizes_rejected() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        let r = RewardStructure::from_rates(vec![1.0, 2.0, 3.0]);
        assert!(r.steady_rate(&c, &[0.5, 0.5]).is_err());
        assert!(r.accumulated(&c, &[0.5, 0.5]).is_err());
        let r2 = RewardStructure::from_rates(vec![1.0, 2.0]).with_impulse(0, 5, 1.0);
        assert!(r2.accumulated(&c, &[0.5, 0.5]).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn instant_panics_on_mismatch() {
        RewardStructure::from_rates(vec![1.0]).instant(&[0.5, 0.5]);
    }
}
