//! Transient solution of CTMCs: the distribution `π(t)` and the accumulated
//! occupancy `L(t) = ∫₀ᵗ π(s) ds`.
//!
//! Two engines are provided and selected automatically:
//!
//! * **Uniformization** with Fox–Glynn Poisson windows — exact up to
//!   truncation, cost `O(Λt · nnz)`. Preferred when `Λt` is moderate.
//! * **Dense matrix exponential** (scaling and squaring) — cost
//!   `O(n³ · log(Λt))`, immune to stiffness. Preferred for the
//!   guarded-operation models where `Λt ~ 10⁷`.
//!
//! The `Auto` method compares rough flop counts of the two engines — one
//! sparse product per expected Poisson step against one dense `n³` product
//! per squaring — and picks the cheaper one that fits its budget (step
//! budget for uniformization, state limit for the dense exponential). For
//! the paper's stiff chains (`Λt ~ 10⁶` on a few dozen states) this
//! resolves to the matrix exponential, which is orders of magnitude
//! cheaper than stepping the uniformized DTMC millions of times.
//!
//! The uniformization path itself is adaptive: steps run through
//! [`sparsela::blocked`] kernels, skipping negligible-mass source states
//! under a rigorously-budgeted drop tolerance while the support is small
//! and switching to a blocked gather kernel (with the Fox–Glynn
//! accumulation fused into the same pass) once mass has spread.

use sparsela::blocked::{spmv_transpose_adaptive, BlockedKernel};
use sparsela::{vector, CsrMatrix};

use crate::expm;
use crate::fox_glynn::PoissonWindow;
use crate::{Ctmc, MarkovError, Result};

/// Engine used for transient solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// Choose uniformization when `Λt` is small enough, otherwise the dense
    /// matrix exponential.
    #[default]
    Auto,
    /// Force uniformization (errors out when the step budget is exceeded).
    Uniformization,
    /// Force the dense matrix exponential (errors out above the dense state
    /// limit).
    MatrixExponential,
}

/// Options for the transient solvers.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Engine selection.
    pub method: Method,
    /// Per-tail truncation error for the Poisson window.
    pub epsilon: f64,
    /// Maximum number of uniformization steps (`≈ Λt` plus window width)
    /// before `Auto` switches to the matrix exponential.
    pub max_uniformization_steps: usize,
    /// Maximum state count for the dense matrix exponential.
    pub dense_state_limit: usize,
    /// When `true`, uniformization stops early once the uniformized DTMC
    /// iterates stop changing (steady-state detection).
    pub steady_state_detection: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            method: Method::Auto,
            epsilon: 1e-12,
            max_uniformization_steps: 2_000_000,
            dense_state_limit: 1500,
            steady_state_detection: true,
        }
    }
}

/// Computes the state distribution `π(t)` from the initial distribution
/// `pi0`.
///
/// # Errors
///
/// * [`MarkovError::InvalidDistribution`] when `pi0` is not a distribution
///   over the chain's states.
/// * [`MarkovError::InvalidModel`] when `t` is negative or non-finite.
/// * [`MarkovError::LimitExceeded`] when the selected engine exceeds its
///   budget.
pub fn distribution(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    ctmc.check_distribution(pi0)?;
    check_time(t)?;
    if t == 0.0 || ctmc.max_exit_rate() == 0.0 {
        return Ok(pi0.to_vec());
    }
    let method = select_method(ctmc, t, opts, 1)?;
    let mut span = telemetry::span("markov.transient.distribution");
    span.record("states", ctmc.n_states());
    span.record("t", t);
    span.record("method", method_name(method));
    match method {
        Method::Uniformization => uniformized_distribution(ctmc, pi0, t, opts),
        Method::MatrixExponential => expm_distribution(ctmc, pi0, t, opts),
        Method::Auto => unreachable!("select_method resolves Auto"),
    }
}

/// Computes the accumulated occupancy `L(t) = ∫₀ᵗ π(s) ds`.
///
/// `L(t)[s]` is the expected total time spent in state `s` during `[0, t]`;
/// `Σ_s L(t)[s] = t`.
///
/// # Errors
///
/// Same failure modes as [`distribution`].
pub fn occupancy(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    ctmc.check_distribution(pi0)?;
    check_time(t)?;
    if t == 0.0 {
        return Ok(vec![0.0; ctmc.n_states()]);
    }
    if ctmc.max_exit_rate() == 0.0 {
        return Ok(pi0.iter().map(|p| p * t).collect());
    }
    let method = select_method(ctmc, t, opts, 2)?;
    let mut span = telemetry::span("markov.transient.occupancy");
    span.record("states", ctmc.n_states());
    span.record("t", t);
    span.record("method", method_name(method));
    match method {
        Method::Uniformization => uniformized_occupancy(ctmc, pi0, t, opts),
        Method::MatrixExponential => expm_occupancy(ctmc, pi0, t, opts),
        Method::Auto => unreachable!("select_method resolves Auto"),
    }
}

fn method_name(m: Method) -> &'static str {
    match m {
        Method::Auto => "auto",
        Method::Uniformization => "uniformization",
        Method::MatrixExponential => "matrix_exponential",
    }
}

/// Computes the state distribution at each of several **ascending** time
/// points in one pass, propagating incrementally from point to point
/// (`π(t_{k+1})` is solved from `π(t_k)` over the gap). For `m` points this
/// costs `m` short solves instead of `m` solves from zero — the natural way
/// to evaluate a φ-sweep.
///
/// # Errors
///
/// * [`MarkovError::InvalidModel`] when the time points are not finite,
///   non-negative, and ascending.
/// * Propagates per-interval solver failures.
pub fn distribution_at_times(
    ctmc: &Ctmc,
    pi0: &[f64],
    times: &[f64],
    opts: &Options,
) -> Result<Vec<Vec<f64>>> {
    ctmc.check_distribution(pi0)?;
    check_ascending_times(times)?;
    let mut out = Vec::with_capacity(times.len());
    let mut current = pi0.to_vec();
    let mut current_t = 0.0;
    for &t in times {
        let gap = t - current_t;
        if gap > 0.0 {
            current = distribution(ctmc, &current, gap, opts)?;
            current_t = t;
        }
        out.push(current.clone());
    }
    Ok(out)
}

/// Computes the state distribution at each of several **ascending** time
/// points from one shared pass, reusing the `t`-independent work across the
/// whole batch:
///
/// * On the uniformization path the power sequence `π₀·P^k` is computed
///   **once** and each time point accumulates it under its own Fox–Glynn
///   truncation window, so `m` points cost a single pass up to the largest
///   window instead of `m` solves.
/// * On the matrix-exponential path (stiff chains — the guarded-operation
///   models) the dense propagator `e^{Q·δ}` is cached per distinct gap `δ`
///   of the grid, so a uniform sweep grid costs **one** matrix exponential
///   plus `m` matrix–vector products. For equal gaps this is bitwise
///   identical to [`distribution_at_times`] (the same propagator multiplies
///   the same vectors).
///
/// Agrees with repeated single-`t` [`distribution`] calls up to the window
/// truncation tolerance (property-tested to `1e-12`).
///
/// # Errors
///
/// Same failure modes as [`distribution_at_times`].
pub fn distribution_batch(
    ctmc: &Ctmc,
    pi0: &[f64],
    times: &[f64],
    opts: &Options,
) -> Result<Vec<Vec<f64>>> {
    ctmc.check_distribution(pi0)?;
    check_ascending_times(times)?;
    let Some(&t_max) = times.last() else {
        return Ok(Vec::new());
    };
    if t_max == 0.0 || ctmc.max_exit_rate() == 0.0 {
        return Ok(times.iter().map(|_| pi0.to_vec()).collect());
    }
    // A single shared power sequence is only possible when uniformization can
    // reach the *largest* time point; otherwise fall back to incremental
    // propagation (with propagator caching on matrix-exponential gaps). A
    // forced engine keeps the forced engine's budget errors.
    let shared_pass = match opts.method {
        Method::MatrixExponential => false,
        Method::Uniformization => {
            select_method(ctmc, t_max, opts, 1)?;
            true
        }
        Method::Auto => matches!(select_method(ctmc, t_max, opts, 1)?, Method::Uniformization),
    };
    let mut span = telemetry::span("markov.transient.distribution_batch");
    span.record("states", ctmc.n_states());
    span.record("points", times.len());
    span.record("t_max", t_max);
    span.record(
        "mode",
        if shared_pass {
            "shared_uniformization"
        } else {
            "cached_propagation"
        },
    );
    if shared_pass {
        batch_uniformized(ctmc, pi0, times, opts)
    } else {
        batch_propagated(ctmc, pi0, times, opts)
    }
}

/// One uniformization pass serving every time point: each point accumulates
/// the shared iterates `π₀·P^k` under its own Poisson window.
fn batch_uniformized(
    ctmc: &Ctmc,
    pi0: &[f64],
    times: &[f64],
    opts: &Options,
) -> Result<Vec<Vec<f64>>> {
    let lambda = uniformization_rate(ctmc);
    let p = ctmc.uniformized(lambda)?;
    let windows: Vec<Option<PoissonWindow>> = times
        .iter()
        .map(|&t| {
            if t == 0.0 {
                Ok(None)
            } else {
                PoissonWindow::compute(lambda * t, opts.epsilon).map(Some)
            }
        })
        .collect::<Result<_>>()?;
    // `t_max > 0` guarantees at least one window; if none exists anyway,
    // every requested time was 0 and the initial distribution is the answer.
    let Some(k_max) = windows.iter().flatten().map(|w| w.right).max() else {
        return Ok(times.iter().map(|_| pi0.to_vec()).collect());
    };
    let mut span = telemetry::span("markov.solve.uniformization");
    let mut flight = telemetry::SolveDiag::new("uniformization");
    flight.uniformization_rate = Some(lambda);
    if let Some(widest) = windows.iter().flatten().last() {
        record_uniformization(lambda, widest);
        flight.fox_glynn_window = Some((widest.left as u64, widest.right as u64));
    }

    let n = ctmc.n_states();
    // One blocked layout (inside the stepper) is shared across the whole
    // sweep: every time point's window accumulates the same power sequence.
    let drop_tol = adaptive_drop_tol(opts.epsilon, k_max as u64, n);
    let mut stepper = PowerStepper::new(p.matrix(), pi0, drop_tol);
    let mut out: Vec<Vec<f64>> = times.iter().map(|_| vec![0.0; n]).collect();
    let mut cur = pi0.to_vec();
    let mut next = vec![0.0; n];
    let mut steps = 0u64;
    let mut axpys = 0u64;

    let mut ssd = SsdTracker::new(opts.epsilon.max(1e-15));
    'power: for k in 0..=k_max {
        for (acc, window) in out.iter_mut().zip(&windows) {
            if let Some(w) = window {
                if k >= w.left && k <= w.right {
                    vector::axpy(w.weight(k), &cur, acc);
                    axpys += 1;
                }
            }
        }
        if k < k_max {
            stepper.step(&cur, &mut next);
            steps += 1;
            if opts.steady_state_detection {
                let diff = vector::diff_norm_inf(&cur, &next);
                if telemetry::enabled() {
                    flight.push_residual(diff);
                }
                if ssd.converged(diff, steps) {
                    // The DTMC has converged: every window's remaining mass
                    // sees the same vector.
                    for (acc, window) in out.iter_mut().zip(&windows) {
                        if let Some(w) = window {
                            let remaining: f64 =
                                ((k + 1).max(w.left)..=w.right).map(|j| w.weight(j)).sum();
                            if remaining > 0.0 {
                                vector::axpy(remaining, &next, acc);
                                axpys += 1;
                            }
                        }
                    }
                    break 'power;
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
    }
    flight.ssd_trigger_step = ssd.trigger_step;
    flight.active_states = Some(stepper.peak_active);
    finish_uniformized(&mut flight, &mut span, steps, axpys);
    for (acc, window) in out.iter_mut().zip(&windows) {
        match window {
            None => acc.copy_from_slice(pi0),
            Some(_) => {
                vector::normalize_l1(acc);
            }
        }
    }
    Ok(out)
}

/// Incremental gap-to-gap propagation (the [`distribution_at_times`]
/// recurrence) with a per-gap cache of dense matrix-exponential propagators.
fn batch_propagated(
    ctmc: &Ctmc,
    pi0: &[f64],
    times: &[f64],
    opts: &Options,
) -> Result<Vec<Vec<f64>>> {
    let mut propagators: std::collections::HashMap<u64, sparsela::DenseMatrix> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(times.len());
    let mut current = pi0.to_vec();
    let mut current_t = 0.0;
    for &t in times {
        let gap = t - current_t;
        if gap > 0.0 {
            match select_method(ctmc, gap, opts, 1)? {
                Method::Uniformization => {
                    current = uniformized_distribution(ctmc, &current, gap, opts)?;
                }
                Method::MatrixExponential => {
                    let e = match propagators.entry(gap.to_bits()) {
                        std::collections::hash_map::Entry::Occupied(hit) => {
                            telemetry::counter("markov.expm.cache_hits", 1);
                            hit.into_mut()
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            telemetry::counter("markov.expm.solves", 1);
                            let q = ctmc
                                .generator()
                                .to_dense_checked(opts.dense_state_limit * opts.dense_state_limit)
                                .map_err(MarkovError::from)?;
                            let mut qt = q;
                            qt.scale(gap);
                            slot.insert(expm::expm(&qt)?)
                        }
                    };
                    let mut pi = e.vec_mul(&current);
                    clamp_probabilities(&mut pi);
                    current = pi;
                }
                Method::Auto => unreachable!("select_method resolves Auto"),
            }
            current_t = t;
        }
        out.push(current.clone());
    }
    Ok(out)
}

fn check_ascending_times(times: &[f64]) -> Result<()> {
    let mut last_t = 0.0;
    for &t in times {
        check_time(t)?;
        if t < last_t {
            return Err(MarkovError::InvalidModel {
                context: format!("time points must be ascending: {t} after {last_t}"),
            });
        }
        last_t = t;
    }
    Ok(())
}

fn check_time(t: f64) -> Result<()> {
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidModel {
            context: format!("time horizon must be finite and >= 0, got {t}"),
        });
    }
    Ok(())
}

/// Rough flop count of a uniformization pass: one sparse product over
/// `P = I + Q/Λ` per expected Poisson step.
fn uniformization_cost(ctmc: &Ctmc, expected_steps: f64) -> f64 {
    let nnz_p = (ctmc.generator().nnz() + ctmc.n_states()).max(1);
    expected_steps * nnz_p as f64
}

/// Rough flop count of the scaling-and-squaring matrix exponential on a
/// dense `n_dense × n_dense` matrix: one `n³` product per squaring plus
/// the Padé evaluation and LU (~8 products' worth).
fn expm_cost(n_dense: usize, expected_steps: f64) -> f64 {
    let squarings = expected_steps.max(2.0).log2().ceil();
    (n_dense as f64).powi(3) * (squarings + 8.0)
}

/// Resolves `Auto` into a concrete engine, validating budgets.
///
/// `dense_factor` is the blow-up the dense engine would incur for this
/// solve kind: 1 for a plain distribution, 2 for occupancy (which
/// exponentiates an augmented `2n × 2n` block matrix).
fn select_method(ctmc: &Ctmc, t: f64, opts: &Options, dense_factor: usize) -> Result<Method> {
    let lambda = uniformization_rate(ctmc);
    let expected_steps = lambda * t;
    let uniform_ok = expected_steps.is_finite()
        && expected_steps + 10.0 * expected_steps.sqrt() + 50.0
            <= opts.max_uniformization_steps as f64;
    let dense_ok = ctmc.n_states() <= opts.dense_state_limit;
    match opts.method {
        Method::Uniformization => {
            if uniform_ok {
                Ok(Method::Uniformization)
            } else {
                Err(MarkovError::LimitExceeded {
                    context: format!(
                        "uniformization needs ~{expected_steps:.3e} steps, budget is {}",
                        opts.max_uniformization_steps
                    ),
                })
            }
        }
        Method::MatrixExponential => {
            if dense_ok {
                Ok(Method::MatrixExponential)
            } else {
                Err(MarkovError::LimitExceeded {
                    context: format!(
                        "matrix exponential limited to {} states, model has {}",
                        opts.dense_state_limit,
                        ctmc.n_states()
                    ),
                })
            }
        }
        Method::Auto => {
            if uniform_ok && dense_ok {
                // Both engines fit their budgets: take the cheaper one.
                // The comparison depends only on the model and the horizon,
                // never on thread count, so selection is deterministic.
                let n_dense = dense_factor * ctmc.n_states();
                if uniformization_cost(ctmc, expected_steps) <= expm_cost(n_dense, expected_steps) {
                    Ok(Method::Uniformization)
                } else {
                    Ok(Method::MatrixExponential)
                }
            } else if uniform_ok {
                Ok(Method::Uniformization)
            } else if dense_ok {
                Ok(Method::MatrixExponential)
            } else {
                Err(MarkovError::LimitExceeded {
                    context: format!(
                        "no transient engine fits: ~{expected_steps:.3e} uniformization steps \
                         (budget {}) and {} states (dense limit {})",
                        opts.max_uniformization_steps,
                        ctmc.n_states(),
                        opts.dense_state_limit
                    ),
                })
            }
        }
    }
}

fn uniformization_rate(ctmc: &Ctmc) -> f64 {
    // Slight inflation guarantees aperiodicity of the uniformized chain and
    // tolerates rounding in the max exit rate.
    ctmc.max_exit_rate() * 1.02
}

/// Per-step mass-drop tolerance for adaptive uniformization.
///
/// Dropping at most `drop_tol` of mass per source state per step loses at
/// most `n · drop_tol` of L1 mass per step, and a stochastic matrix does
/// not amplify L1 error, so a pass of `steps` steps loses at most
/// `ε` in total — the same budget as the Fox–Glynn truncation, and far
/// inside the `1e-9` the performability measures need. The final
/// renormalization then redistributes the lost mass proportionally.
fn adaptive_drop_tol(epsilon: f64, steps: u64, n: usize) -> f64 {
    epsilon / ((steps + 1) as f64 * n.max(1) as f64)
}

/// Advances `π ← π·P` across the many powers of one uniformization pass.
///
/// While the probability mass is concentrated on few states (point-mass
/// initial distributions early in a pass, absorbing-tail chains), steps run
/// in adaptive scatter form: source states carrying less than the budgeted
/// drop tolerance are skipped and their mass tracked. Once the support
/// covers most of the state space the stepper switches — permanently, and
/// purely as a function of the data, never the thread count — to the
/// blocked gather kernel, whose fused variant folds the Fox–Glynn-weighted
/// accumulation into the same pass. The kernel layout is built lazily on
/// the first gather step and reused for every subsequent power.
struct PowerStepper<'a> {
    p: &'a CsrMatrix,
    kernel: Option<BlockedKernel>,
    drop_tol: f64,
    adaptive: bool,
    peak_active: u64,
    dropped_mass: f64,
}

impl<'a> PowerStepper<'a> {
    /// Share of states that must be active before the stepper abandons the
    /// adaptive scatter for the blocked gather kernel (7/8).
    const GATHER_CUTOFF_NUM: usize = 7;
    const GATHER_CUTOFF_DEN: usize = 8;

    fn new(p: &'a CsrMatrix, pi0: &[f64], drop_tol: f64) -> Self {
        let n = p.rows();
        let active = pi0
            .iter()
            .filter(|&&v| v != 0.0 && v.abs() >= drop_tol)
            .count();
        PowerStepper {
            p,
            kernel: None,
            drop_tol,
            adaptive: active * Self::GATHER_CUTOFF_DEN < n * Self::GATHER_CUTOFF_NUM,
            peak_active: active as u64,
            dropped_mass: 0.0,
        }
    }

    fn note_active(&mut self, active: usize) {
        self.peak_active = self.peak_active.max(active as u64);
        if active * Self::GATHER_CUTOFF_DEN >= self.p.rows() * Self::GATHER_CUTOFF_NUM {
            self.adaptive = false;
        }
    }

    /// One step `next = cur·P` with the accumulation `acc += weight·cur`
    /// fused in (skipped when `weight` is zero).
    fn step_fused(&mut self, cur: &[f64], next: &mut [f64], weight: f64, acc: &mut [f64]) {
        if self.adaptive {
            if weight != 0.0 {
                vector::axpy(weight, cur, acc);
            }
            let st = spmv_transpose_adaptive(self.p, cur, next, self.drop_tol);
            self.dropped_mass += st.dropped_mass;
            self.note_active(st.active_sources);
        } else {
            self.peak_active = self.peak_active.max(self.p.rows() as u64);
            let p = self.p;
            let kernel = self
                .kernel
                .get_or_insert_with(|| BlockedKernel::from_csr(p));
            kernel.apply_fused(cur, next, weight, acc);
        }
    }

    /// One step `next = cur·P` without accumulation (batch passes keep one
    /// accumulator per time point and cannot fuse).
    fn step(&mut self, cur: &[f64], next: &mut [f64]) {
        if self.adaptive {
            let st = spmv_transpose_adaptive(self.p, cur, next, self.drop_tol);
            self.dropped_mass += st.dropped_mass;
            self.note_active(st.active_sources);
        } else {
            self.peak_active = self.peak_active.max(self.p.rows() as u64);
            let p = self.p;
            let kernel = self
                .kernel
                .get_or_insert_with(|| BlockedKernel::from_csr(p));
            kernel.apply(cur, next);
        }
    }
}

/// Steady-state detection for the uniformized power sequence.
///
/// The plain criterion stops once successive iterates differ by less than
/// the tolerance in the ∞-norm. On top of that, a geometric extrapolation
/// tightens the cutoff: when diffs decay at an observed rate `r < 1/2`,
/// the total remaining change is bounded by `diff·r/(1−r) < diff`, so the
/// pass can stop as soon as that projection clears the tolerance — a few
/// steps earlier than the plain check, with the same error guarantee as
/// long as the decay stays geometric.
struct SsdTracker {
    tol: f64,
    prev_diff: f64,
    trigger_step: Option<u64>,
}

impl SsdTracker {
    fn new(tol: f64) -> Self {
        SsdTracker {
            tol,
            prev_diff: f64::INFINITY,
            trigger_step: None,
        }
    }

    /// Returns `true` when the iterates have converged tightly enough that
    /// all remaining Poisson mass can be applied to the current vector.
    fn converged(&mut self, diff: f64, step: u64) -> bool {
        let extrapolated = if self.prev_diff.is_finite() && diff < self.prev_diff {
            let r = diff / self.prev_diff;
            r < 0.5 && diff * r / (1.0 - r) < self.tol
        } else {
            false
        };
        self.prev_diff = diff;
        let hit = diff < self.tol || extrapolated;
        if hit && self.trigger_step.is_none() {
            self.trigger_step = Some(step);
        }
        hit
    }
}

fn record_uniformization(lambda: f64, window: &PoissonWindow) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::counter("markov.uniformization.solves", 1);
    telemetry::gauge("markov.uniformization.rate", lambda);
    telemetry::observe("markov.uniformization.steps", (window.right + 1) as f64);
    // Each uniformization step is one vector–matrix product: the transient
    // engine's analogue of a linear-solver sweep. Counting it here keeps
    // `solver.iterations` a global work tally across all solve flavours.
    telemetry::counter("solver.iterations", (window.right + 1) as u64);
}

/// Closes a uniformization flight record: tallies the executed steps into
/// the global work counters and attaches the diagnostics to the solve span.
fn finish_uniformized(
    flight: &mut telemetry::SolveDiag,
    span: &mut telemetry::SpanGuard,
    steps: u64,
    axpys: u64,
) {
    telemetry::work::count_iterations(steps);
    flight.iterations = steps;
    flight.spmv_ops = steps;
    flight.axpy_ops = axpys;
    flight.record_on(span);
}

fn uniformized_distribution(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    let lambda = uniformization_rate(ctmc);
    let p = ctmc.uniformized(lambda)?;
    let window = PoissonWindow::compute(lambda * t, opts.epsilon)?;
    record_uniformization(lambda, &window);
    let mut span = telemetry::span("markov.solve.uniformization");
    let mut flight = telemetry::SolveDiag::new("uniformization");
    flight.uniformization_rate = Some(lambda);
    flight.fox_glynn_window = Some((window.left as u64, window.right as u64));

    let n = ctmc.n_states();
    let drop_tol = adaptive_drop_tol(opts.epsilon, window.right as u64, n);
    let mut stepper = PowerStepper::new(p.matrix(), pi0, drop_tol);
    let mut cur = pi0.to_vec();
    let mut next = vec![0.0; n];
    let mut out = vec![0.0; n];
    let mut steps = 0u64;
    let mut axpys = 0u64;

    let mut ssd = SsdTracker::new(opts.epsilon.max(1e-15));
    let mut truncated = false;
    for k in 0..window.right {
        // The accumulation for power k is fused into the step producing
        // power k+1 (weight 0 outside the Poisson window skips it).
        let weight = if k >= window.left {
            window.weight(k)
        } else {
            0.0
        };
        if weight != 0.0 {
            axpys += 1;
        }
        stepper.step_fused(&cur, &mut next, weight, &mut out);
        steps += 1;
        if opts.steady_state_detection {
            let diff = vector::diff_norm_inf(&cur, &next);
            if telemetry::enabled() {
                flight.push_residual(diff);
            }
            if ssd.converged(diff, steps) {
                // The DTMC has converged: all remaining Poisson mass sees
                // the same vector.
                let remaining: f64 = ((k + 1).max(window.left)..=window.right)
                    .map(|j| window.weight(j))
                    .sum();
                vector::axpy(remaining, &next, &mut out);
                axpys += 1;
                truncated = true;
                break;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    if !truncated && window.right >= window.left {
        vector::axpy(window.weight(window.right), &cur, &mut out);
        axpys += 1;
    }
    vector::normalize_l1(&mut out);
    flight.ssd_trigger_step = ssd.trigger_step;
    flight.active_states = Some(stepper.peak_active);
    finish_uniformized(&mut flight, &mut span, steps, axpys);
    Ok(out)
}

fn uniformized_occupancy(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    // L(t) = (1/Λ) Σ_{k≥0} P[N > k] · π P^k  with N ~ Poisson(Λt).
    let lambda = uniformization_rate(ctmc);
    let p = ctmc.uniformized(lambda)?;
    let window = PoissonWindow::compute(lambda * t, opts.epsilon)?;
    record_uniformization(lambda, &window);
    let mut span = telemetry::span("markov.solve.uniformization");
    let mut flight = telemetry::SolveDiag::new("uniformization");
    flight.uniformization_rate = Some(lambda);
    flight.fox_glynn_window = Some((window.left as u64, window.right as u64));
    let tails = window.right_tails();

    let n = ctmc.n_states();
    let drop_tol = adaptive_drop_tol(opts.epsilon, window.right as u64, n);
    let mut stepper = PowerStepper::new(p.matrix(), pi0, drop_tol);
    let mut cur = pi0.to_vec();
    let mut next = vec![0.0; n];
    let mut acc = vec![0.0; n];
    let mut steps = 0u64;
    let mut axpys = 0u64;

    // P[N > k]: 1 below the window, the right-tail inside it.
    let tail_at = |k: usize| {
        if k < window.left {
            1.0
        } else {
            tails[k - window.left]
        }
    };
    let mut ssd = SsdTracker::new(opts.epsilon.max(1e-15));
    let mut truncated = false;
    for k in 0..window.right {
        let tail = tail_at(k);
        if tail > 0.0 {
            axpys += 1;
        }
        stepper.step_fused(&cur, &mut next, tail, &mut acc);
        steps += 1;
        if opts.steady_state_detection {
            let diff = vector::diff_norm_inf(&cur, &next);
            if telemetry::enabled() {
                flight.push_residual(diff);
            }
            if ssd.converged(diff, steps) {
                // Remaining contributions all use (approximately) the same
                // vector: Σ_{j>k} P[N > j] = E[(N − k − 1)⁺].
                let mut remaining = 0.0;
                for j in (k + 1)..=window.right {
                    remaining += tail_at(j);
                }
                vector::axpy(remaining, &next, &mut acc);
                axpys += 1;
                truncated = true;
                break;
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    if !truncated {
        let tail = tail_at(window.right);
        if tail > 0.0 {
            vector::axpy(tail, &cur, &mut acc);
            axpys += 1;
        }
    }
    vector::scale(1.0 / lambda, &mut acc);
    flight.ssd_trigger_step = ssd.trigger_step;
    flight.active_states = Some(stepper.peak_active);
    finish_uniformized(&mut flight, &mut span, steps, axpys);
    Ok(acc)
}

fn expm_distribution(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    telemetry::counter("markov.expm.solves", 1);
    let q = ctmc
        .generator()
        .to_dense_checked(opts.dense_state_limit * opts.dense_state_limit)
        .map_err(MarkovError::from)?;
    let mut qt = q;
    qt.scale(t);
    let e = expm::expm(&qt)?;
    let mut pi = e.vec_mul(pi0);
    clamp_probabilities(&mut pi);
    Ok(pi)
}

fn expm_occupancy(ctmc: &Ctmc, pi0: &[f64], t: f64, opts: &Options) -> Result<Vec<f64>> {
    telemetry::counter("markov.expm.solves", 1);
    let q = ctmc
        .generator()
        .to_dense_checked(opts.dense_state_limit * opts.dense_state_limit)
        .map_err(MarkovError::from)?;
    let (_, integral) = expm::expm_with_integral_scaled(&q, t)?;
    let mut occupancy = integral.vec_mul(pi0);
    for o in &mut occupancy {
        if *o < 0.0 && *o > -1e-9 {
            *o = 0.0;
        }
    }
    Ok(occupancy)
}

fn clamp_probabilities(pi: &mut [f64]) {
    for p in pi.iter_mut() {
        if *p < 0.0 && *p > -1e-9 {
            *p = 0.0;
        }
    }
    vector::normalize_l1(pi);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Ctmc {
        // 0 -> 1 at rate a, 1 -> 0 at rate b.
        Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap()
    }

    /// Closed form for the two-state chain starting in state 0:
    /// p0(t) = b/(a+b) + a/(a+b)·exp(−(a+b)t).
    fn two_state_p0(t: f64) -> f64 {
        let (a, b) = (2.0, 3.0);
        b / (a + b) + a / (a + b) * (-(a + b) * t).exp()
    }

    #[test]
    fn matches_closed_form_uniformization() {
        let c = two_state();
        let opts = Options {
            method: Method::Uniformization,
            ..Default::default()
        };
        for &t in &[0.01, 0.1, 0.5, 1.0, 5.0] {
            let pi = distribution(&c, &[1.0, 0.0], t, &opts).unwrap();
            assert!(
                (pi[0] - two_state_p0(t)).abs() < 1e-9,
                "t={t}: {} vs {}",
                pi[0],
                two_state_p0(t)
            );
        }
    }

    #[test]
    fn matches_closed_form_expm() {
        let c = two_state();
        let opts = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };
        for &t in &[0.01, 0.5, 5.0] {
            let pi = distribution(&c, &[1.0, 0.0], t, &opts).unwrap();
            assert!((pi[0] - two_state_p0(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn engines_agree_on_erlang_chain() {
        // 5-stage Erlang: absorbing chain, P[absorbed by t] = Erlang CDF.
        let n = 6;
        let rate = 1.7;
        let trans: Vec<_> = (0..5).map(|i| (i, i + 1, rate)).collect();
        let c = Ctmc::from_transitions(n, trans).unwrap();
        let pi0 = c.point_distribution(0);
        let t = 3.0;

        let uopts = Options {
            method: Method::Uniformization,
            ..Default::default()
        };
        let eopts = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };

        let pu = distribution(&c, &pi0, t, &uopts).unwrap();
        let pe = distribution(&c, &pi0, t, &eopts).unwrap();
        for (a, b) in pu.iter().zip(&pe) {
            assert!((a - b).abs() < 1e-9);
        }
        // Erlang(5, rate) CDF at t.
        let x = rate * t;
        let mut cdf = 1.0;
        let mut term = 1.0;
        for k in 1..5 {
            term *= x / k as f64;
            cdf += term;
        }
        let cdf = 1.0 - cdf * (-x).exp();
        assert!((pu[5] - cdf).abs() < 1e-9);
    }

    #[test]
    fn occupancy_sums_to_t() {
        let c = two_state();
        for &t in &[0.5, 2.0, 10.0] {
            let l = occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
            assert!((l.iter().sum::<f64>() - t).abs() < 1e-8, "t={t}");
        }
    }

    #[test]
    fn occupancy_matches_closed_form() {
        // ∫₀ᵗ p0(s) ds for the two-state chain.
        let c = two_state();
        let (a, b): (f64, f64) = (2.0, 3.0);
        let t = 1.25;
        let want = b / (a + b) * t + a / (a + b) / (a + b) * (1.0 - (-(a + b) * t).exp());
        let uopts = Options {
            method: Method::Uniformization,
            ..Default::default()
        };
        let eopts = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };
        let lu = occupancy(&c, &[1.0, 0.0], t, &uopts).unwrap();
        let le = occupancy(&c, &[1.0, 0.0], t, &eopts).unwrap();
        assert!(
            (lu[0] - want).abs() < 1e-8,
            "uniformization: {} vs {want}",
            lu[0]
        );
        assert!((le[0] - want).abs() < 1e-8, "expm: {} vs {want}", le[0]);
    }

    #[test]
    fn auto_switches_to_expm_when_stiff() {
        // Λt = 5000·1e4 = 5e7 > default budget: Auto must still succeed.
        let c = Ctmc::from_transitions(2, [(0, 1, 5000.0), (1, 0, 1000.0)]).unwrap();
        let pi = distribution(&c, &[1.0, 0.0], 10_000.0, &Options::default()).unwrap();
        assert!((pi[0] - 1.0 / 6.0).abs() < 1e-6);
        let forced = Options {
            method: Method::Uniformization,
            ..Default::default()
        };
        assert!(matches!(
            distribution(&c, &[1.0, 0.0], 10_000.0, &forced),
            Err(MarkovError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn stiff_occupancy_is_consistent() {
        let c = Ctmc::from_transitions(2, [(0, 1, 5000.0), (1, 0, 1000.0)]).unwrap();
        let t = 10_000.0;
        let l = occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
        // ~24 squarings of the augmented block matrix leave ~1e-9 relative
        // error; that is far below what the performability measures need.
        assert!((l.iter().sum::<f64>() - t).abs() < t * 1e-7);
        // Long-run fractions 1/6, 5/6.
        assert!((l[0] / t - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn t_zero_is_initial_distribution() {
        let c = two_state();
        let pi = distribution(&c, &[0.3, 0.7], 0.0, &Options::default()).unwrap();
        assert_eq!(pi, vec![0.3, 0.7]);
        let l = occupancy(&c, &[0.3, 0.7], 0.0, &Options::default()).unwrap();
        assert_eq!(l, vec![0.0, 0.0]);
    }

    #[test]
    fn all_absorbing_chain() {
        let c = Ctmc::from_transitions(2, std::iter::empty()).unwrap();
        let pi = distribution(&c, &[0.4, 0.6], 7.0, &Options::default()).unwrap();
        assert_eq!(pi, vec![0.4, 0.6]);
        let l = occupancy(&c, &[0.4, 0.6], 5.0, &Options::default()).unwrap();
        assert!((l[0] - 2.0).abs() < 1e-12);
        assert!((l[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let c = two_state();
        assert!(distribution(&c, &[0.5, 0.6], 1.0, &Options::default()).is_err());
        assert!(distribution(&c, &[1.0, 0.0], -1.0, &Options::default()).is_err());
        assert!(distribution(&c, &[1.0, 0.0], f64::NAN, &Options::default()).is_err());
    }

    #[test]
    fn steady_state_detection_matches_exact() {
        let c = two_state();
        let with_sse = Options {
            method: Method::Uniformization,
            steady_state_detection: true,
            ..Default::default()
        };
        let mut without = with_sse.clone();
        without.steady_state_detection = false;
        let t = 50.0; // far past mixing
        let a = distribution(&c, &[1.0, 0.0], t, &with_sse).unwrap();
        let b = distribution(&c, &[1.0, 0.0], t, &without).unwrap();
        assert!(sparsela::vector::diff_norm_inf(&a, &b) < 1e-9);
        // And both equal the steady state 3/5, 2/5.
        assert!((a[0] - 0.6).abs() < 1e-9);
    }

    #[test]
    fn at_times_matches_independent_solves() {
        let c = two_state();
        let times = [0.0, 0.2, 0.2, 1.0, 4.0];
        let batch = distribution_at_times(&c, &[1.0, 0.0], &times, &Options::default()).unwrap();
        assert_eq!(batch.len(), times.len());
        for (&t, pi) in times.iter().zip(&batch) {
            let solo = distribution(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
            assert!(sparsela::vector::diff_norm_inf(pi, &solo) < 1e-9, "t={t}");
        }
    }

    #[test]
    fn at_times_rejects_unsorted() {
        let c = two_state();
        assert!(matches!(
            distribution_at_times(&c, &[1.0, 0.0], &[1.0, 0.5], &Options::default()),
            Err(MarkovError::InvalidModel { .. })
        ));
        assert!(
            distribution_at_times(&c, &[1.0, 0.0], &[], &Options::default())
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn absorbing_probability_is_monotone() {
        let c = Ctmc::from_transitions(2, [(0, 1, 0.3)]).unwrap();
        let mut last = 0.0;
        for &t in &[0.5, 1.0, 2.0, 4.0, 8.0] {
            let pi = distribution(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
            assert!(pi[1] >= last);
            assert!((pi[1] - (1.0 - (-0.3 * t).exp())).abs() < 1e-9);
            last = pi[1];
        }
    }
}
