//! Markov reward model solution techniques.
//!
//! This crate implements the reward model solution layer the DSN 2002
//! guarded-operation study relies on (the role UltraSAN's numerical solvers
//! played for the original authors):
//!
//! * [`Ctmc`] — continuous-time Markov chains assembled from transition
//!   triplets, with generator validation;
//! * [`Dtmc`] — discrete-time chains (used as the uniformized embedding);
//! * [`transient`] — transient state distributions `π(t)` and accumulated
//!   occupancy `L(t) = ∫₀ᵗ π(s) ds`, solved by **uniformization** with
//!   Fox–Glynn Poisson weights or by dense **matrix exponential**
//!   (scaling-and-squaring, Padé 13) for stiff horizons;
//! * [`steady`] — steady-state distributions by direct LU, Gauss–Seidel,
//!   SOR, or power iteration, plus absorbing-chain analysis;
//! * [`reward`] — UltraSAN-style reward variables: expected instant-of-time
//!   reward, expected accumulated interval-of-time reward, expected
//!   steady-state reward, with both rate and impulse rewards;
//! * [`fox_glynn`] — the Poisson probability window computation.
//!
//! # Example: a two-state availability model
//!
//! ```
//! use markov::{Ctmc, transient, reward::RewardStructure};
//!
//! # fn main() -> Result<(), markov::MarkovError> {
//! // State 0 = up, state 1 = down; failure rate 0.1, repair rate 1.0.
//! let ctmc = Ctmc::from_transitions(2, [(0, 1, 0.1), (1, 0, 1.0)])?;
//! let pi0 = [1.0, 0.0];
//! let pi = transient::distribution(&ctmc, &pi0, 20.0, &Default::default())?;
//! let availability = RewardStructure::from_rates(vec![1.0, 0.0]).instant(&pi);
//! assert!((availability - (10.0/11.0)).abs() < 1e-6); // ≈ steady state
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctmc;
mod dtmc;
mod error;
pub mod expm;
pub mod first_passage;
pub mod fox_glynn;
pub mod graph;
pub mod phase_type;
pub mod reward;
pub mod simulate;
pub mod steady;
pub mod transient;

pub use ctmc::Ctmc;
pub use dtmc::Dtmc;
pub use error::MarkovError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MarkovError>;
