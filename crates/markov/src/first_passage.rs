//! First-passage (hitting-time) analysis.
//!
//! These solvers answer "when does the chain first enter a target set?" —
//! the question behind the paper's detection-time density `h(τ)`: with the
//! detected-states set as target, `P[T ≤ t]` *is* `∫₀ᵗ h(τ)dτ` and the
//! moments below give the exact (uncensored) mean detection time. The
//! `ablation_tau` experiment uses this to quantify the approximation in the
//! paper's Table 1 `∫τh` reward structure.

use sparsela::DenseMatrix;

use crate::{graph, transient, Ctmc, MarkovError, Result};

/// Moments of the first-passage time into a target set.
#[derive(Debug, Clone, PartialEq)]
pub struct HittingMoments {
    /// States outside the target set, ascending (index space of the moment
    /// vectors).
    pub non_target_states: Vec<usize>,
    /// `E[T | start = s]` for each non-target state.
    pub mean: Vec<f64>,
    /// `E[T² | start = s]` for each non-target state.
    pub second_moment: Vec<f64>,
}

impl HittingMoments {
    /// Mean hitting time from an initial distribution over **all** states
    /// (mass already on the target counts as zero).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidDistribution`] on a length mismatch.
    pub fn mean_from(&self, pi0: &[f64], n_states: usize) -> Result<f64> {
        if pi0.len() != n_states {
            return Err(MarkovError::InvalidDistribution {
                context: format!("distribution length {} != {n_states} states", pi0.len()),
            });
        }
        Ok(self
            .non_target_states
            .iter()
            .zip(&self.mean)
            .map(|(&s, m)| pi0[s] * m)
            .sum())
    }

    /// Variance of the hitting time from a single non-target state.
    ///
    /// Returns `None` when `state` is inside the target set.
    pub fn variance_of(&self, state: usize) -> Option<f64> {
        let i = self.non_target_states.iter().position(|&s| s == state)?;
        Some((self.second_moment[i] - self.mean[i] * self.mean[i]).max(0.0))
    }
}

/// Computes the first two moments of the time to first hit `targets`.
///
/// Solves `(−Q_NN)·m = 1` and `(−Q_NN)·m₂ = 2m`, where `Q_NN` is the
/// generator restricted to non-target states (the chain is conceptually
/// stopped at the target, so target outflows are irrelevant).
///
/// # Errors
///
/// * [`MarkovError::AbsorptionStructure`] when `targets` is empty, refers to
///   unknown states, or some non-target state cannot reach the target (its
///   hitting time would be infinite).
/// * [`MarkovError::LinAlg`] if the dense solve fails.
pub fn hitting_moments(ctmc: &Ctmc, targets: &[usize]) -> Result<HittingMoments> {
    let n = ctmc.n_states();
    if targets.is_empty() {
        return Err(MarkovError::AbsorptionStructure {
            context: "empty target set".to_string(),
        });
    }
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(MarkovError::AbsorptionStructure {
                context: format!("target state {t} outside state space 0..{n}"),
            });
        }
        is_target[t] = true;
    }
    let reaches = graph::can_reach(ctmc.generator(), targets);
    let non_target: Vec<usize> = (0..n).filter(|&s| !is_target[s]).collect();
    if let Some(&stuck) = non_target.iter().find(|&&s| !reaches[s]) {
        return Err(MarkovError::AbsorptionStructure {
            context: format!("state {stuck} cannot reach the target set"),
        });
    }

    let m = non_target.len();
    let index: std::collections::HashMap<usize, usize> = non_target
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i))
        .collect();
    let mut neg_qnn = DenseMatrix::zeros(m, m);
    for (r, c, v) in ctmc.generator().iter() {
        if let (Some(&i), Some(&j)) = (index.get(&r), index.get(&c)) {
            neg_qnn[(i, j)] = -v;
        }
    }
    let lu = neg_qnn.lu().map_err(MarkovError::from)?;
    let mean = lu.solve(&vec![1.0; m]).map_err(MarkovError::from)?;
    let rhs2: Vec<f64> = mean.iter().map(|v| 2.0 * v).collect();
    let second_moment = lu.solve(&rhs2).map_err(MarkovError::from)?;

    Ok(HittingMoments {
        non_target_states: non_target,
        mean,
        second_moment,
    })
}

/// The probability that the chain has hit `targets` by time `t`, starting
/// from `pi0` — i.e. the CDF of the (phase-type) first-passage time.
///
/// Implemented by making the target states absorbing and running the
/// transient solver.
///
/// # Errors
///
/// Propagates target-set validation and transient-solver failures.
pub fn hitting_probability_by(
    ctmc: &Ctmc,
    pi0: &[f64],
    targets: &[usize],
    t: f64,
    opts: &transient::Options,
) -> Result<f64> {
    ctmc.check_distribution(pi0)?;
    let n = ctmc.n_states();
    if targets.is_empty() {
        return Err(MarkovError::AbsorptionStructure {
            context: "empty target set".to_string(),
        });
    }
    let mut is_target = vec![false; n];
    for &s in targets {
        if s >= n {
            return Err(MarkovError::AbsorptionStructure {
                context: format!("target state {s} outside state space 0..{n}"),
            });
        }
        is_target[s] = true;
    }
    let stopped = Ctmc::from_transitions(
        n,
        ctmc.transitions().filter(|&(from, _, _)| !is_target[from]),
    )?;
    let pi = transient::distribution(&stopped, pi0, t, opts)?;
    Ok(pi
        .iter()
        .enumerate()
        .filter(|&(s, _)| is_target[s])
        .map(|(_, p)| p)
        .sum())
}

/// The exact truncated first moment `E[T·1{T ≤ horizon}]` of the hitting
/// time, computed by integration by parts:
/// `E[T·1{T≤h}] = h·P[T ≤ h] − ∫₀^h P[T ≤ t] dt`,
/// with the integral evaluated as an accumulated occupancy of the stopped
/// chain's target states.
///
/// This is the exact counterpart of the paper's Table 1 `∫₀^φ τh(τ)dτ`
/// reward structure (which additionally counts censored paths at weight φ).
///
/// # Errors
///
/// Propagates target-set validation and transient-solver failures.
pub fn truncated_mean_hitting_time(
    ctmc: &Ctmc,
    pi0: &[f64],
    targets: &[usize],
    horizon: f64,
    opts: &transient::Options,
) -> Result<f64> {
    ctmc.check_distribution(pi0)?;
    let n = ctmc.n_states();
    let mut is_target = vec![false; n];
    for &s in targets {
        if s >= n {
            return Err(MarkovError::AbsorptionStructure {
                context: format!("target state {s} outside state space 0..{n}"),
            });
        }
        is_target[s] = true;
    }
    let stopped = Ctmc::from_transitions(
        n,
        ctmc.transitions().filter(|&(from, _, _)| !is_target[from]),
    )?;
    let pi_h = transient::distribution(&stopped, pi0, horizon, opts)?;
    let cdf_h: f64 = pi_h
        .iter()
        .enumerate()
        .filter(|&(s, _)| is_target[s])
        .map(|(_, p)| p)
        .sum();
    let occupancy = transient::occupancy(&stopped, pi0, horizon, opts)?;
    let integral_cdf: f64 = occupancy
        .iter()
        .enumerate()
        .filter(|&(s, _)| is_target[s])
        .map(|(_, l)| l)
        .sum();
    Ok(horizon * cdf_h - integral_cdf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_hitting_moments() {
        // 0 -> 1 at rate ν: T ~ Exp(ν): E[T] = 1/ν, Var = 1/ν².
        let nu = 2.5;
        let c = Ctmc::from_transitions(2, [(0, 1, nu)]).unwrap();
        let m = hitting_moments(&c, &[1]).unwrap();
        assert_eq!(m.non_target_states, vec![0]);
        assert!((m.mean[0] - 1.0 / nu).abs() < 1e-12);
        assert!((m.variance_of(0).unwrap() - 1.0 / (nu * nu)).abs() < 1e-12);
        assert_eq!(m.variance_of(1), None);
    }

    #[test]
    fn erlang_hitting_moments() {
        // 3-stage chain at rate ν: Erlang(3, ν): mean 3/ν, var 3/ν².
        let nu = 1.5;
        let c = Ctmc::from_transitions(4, [(0, 1, nu), (1, 2, nu), (2, 3, nu)]).unwrap();
        let m = hitting_moments(&c, &[3]).unwrap();
        assert!((m.mean_from(&[1.0, 0.0, 0.0, 0.0], 4).unwrap() - 3.0 / nu).abs() < 1e-12);
        assert!((m.variance_of(0).unwrap() - 3.0 / (nu * nu)).abs() < 1e-10);
    }

    #[test]
    fn hitting_time_ignores_target_outflows() {
        // Chain continues past the target; hitting time must not care.
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0), (1, 2, 5.0), (2, 0, 9.0)]).unwrap();
        let m = hitting_moments(&c, &[1]).unwrap();
        assert!((m.mean[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unreachable_target_rejected() {
        let c = Ctmc::from_transitions(3, [(0, 1, 1.0)]).unwrap();
        assert!(matches!(
            hitting_moments(&c, &[2]),
            Err(MarkovError::AbsorptionStructure { .. })
        ));
        assert!(hitting_moments(&c, &[]).is_err());
        assert!(hitting_moments(&c, &[7]).is_err());
    }

    #[test]
    fn hitting_probability_is_erlang_cdf() {
        let nu = 2.0;
        let c = Ctmc::from_transitions(3, [(0, 1, nu), (1, 2, nu), (2, 0, 100.0)]).unwrap();
        let pi0 = c.point_distribution(0);
        let t = 1.2;
        let got =
            hitting_probability_by(&c, &pi0, &[2], t, &transient::Options::default()).unwrap();
        let x = nu * t;
        let want = 1.0 - (1.0 + x) * (-x).exp(); // Erlang(2, ν) CDF
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn truncated_mean_matches_closed_form() {
        // T ~ Exp(ν): E[T·1{T≤h}] = 1/ν − e^{−νh}(h + 1/ν).
        let nu = 0.8;
        let h = 2.0;
        let c = Ctmc::from_transitions(2, [(0, 1, nu)]).unwrap();
        let got =
            truncated_mean_hitting_time(&c, &[1.0, 0.0], &[1], h, &transient::Options::default())
                .unwrap();
        let want = 1.0 / nu - (-nu * h).exp() * (h + 1.0 / nu);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn truncated_mean_below_censored_mean() {
        // The censored mean E[min(T, h)] always dominates E[T·1{T≤h}].
        let nu = 0.5;
        let h = 1.0;
        let c = Ctmc::from_transitions(2, [(0, 1, nu)]).unwrap();
        let truncated =
            truncated_mean_hitting_time(&c, &[1.0, 0.0], &[1], h, &transient::Options::default())
                .unwrap();
        let censored = (1.0 - (-nu * h).exp()) / nu; // ∫₀^h P[T>t]dt
        assert!(truncated < censored);
        assert!(truncated >= 0.0);
    }

    #[test]
    fn mean_from_counts_target_mass_as_zero() {
        let c = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
        let m = hitting_moments(&c, &[1]).unwrap();
        assert_eq!(m.mean_from(&[0.0, 1.0], 2).unwrap(), 0.0);
        assert!((m.mean_from(&[0.5, 0.5], 2).unwrap() - 0.5).abs() < 1e-12);
        assert!(m.mean_from(&[1.0], 2).is_err());
    }
}
