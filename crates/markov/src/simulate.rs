//! Trajectory simulation of raw CTMCs.
//!
//! A third, fully independent way to evaluate reward variables (next to
//! uniformization and the matrix exponential): walk the embedded jump chain
//! with exponential holding times and accumulate rewards along the path.
//! Used by the test suites as an oracle-of-last-resort and by users whose
//! chains come from outside the SAN layer.
//!
//! The module is dependency-free (SplitMix64 generator) like the rest of
//! the crate.

use crate::reward::RewardStructure;
use crate::{Ctmc, MarkovError, Result};

/// Deterministic pseudo-random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct ChainRng {
    state: u64,
}

impl ChainRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        ChainRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn exp(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        -(1.0 - self.uniform()).ln() / rate
    }

    fn categorical(&mut self, weights: &[(usize, f64)], total: f64) -> usize {
        let u = self.uniform() * total;
        let mut acc = 0.0;
        for &(state, w) in weights {
            acc += w;
            if u < acc {
                return state;
            }
        }
        weights.last().map(|&(s, _)| s).unwrap_or(0)
    }
}

/// One simulated path's outcome against a reward structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathOutcome {
    /// State occupied at the horizon.
    pub final_state: usize,
    /// Accumulated reward (rate + impulse) over `[0, horizon]`.
    pub accumulated_reward: f64,
    /// Rate reward of the final state.
    pub final_rate: f64,
    /// Number of jumps taken.
    pub jumps: usize,
}

/// Simulates one path of `ctmc` from an initial state drawn from `pi0`,
/// accumulating `reward` (including impulse rewards at jumps).
///
/// # Errors
///
/// * [`MarkovError::InvalidDistribution`] / [`MarkovError::InvalidModel`] on
///   malformed inputs.
/// * [`MarkovError::LimitExceeded`] when more than `max_jumps` transitions
///   occur (stiff-chain guard).
pub fn simulate_path(
    ctmc: &Ctmc,
    pi0: &[f64],
    reward: &RewardStructure,
    horizon: f64,
    max_jumps: usize,
    rng: &mut ChainRng,
) -> Result<PathOutcome> {
    ctmc.check_distribution(pi0)?;
    if !horizon.is_finite() || horizon < 0.0 {
        return Err(MarkovError::InvalidModel {
            context: format!("horizon must be finite and >= 0, got {horizon}"),
        });
    }
    if reward.n_states() != ctmc.n_states() {
        return Err(MarkovError::InvalidModel {
            context: format!(
                "reward over {} states applied to chain with {}",
                reward.n_states(),
                ctmc.n_states()
            ),
        });
    }

    // Draw the initial state.
    let mut state = {
        let weights: Vec<(usize, f64)> = pi0
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > 0.0)
            .map(|(s, &p)| (s, p))
            .collect();
        rng.categorical(&weights, pi0.iter().sum())
    };

    let mut t = 0.0;
    let mut accumulated = 0.0;
    let mut jumps = 0usize;
    loop {
        let exit = ctmc.exit_rate(state);
        let dwell = rng.exp(exit);
        let rate = reward.rates()[state];
        if t + dwell >= horizon || exit == 0.0 {
            accumulated += rate * (horizon - t);
            return Ok(PathOutcome {
                final_state: state,
                accumulated_reward: accumulated,
                final_rate: rate,
                jumps,
            });
        }
        accumulated += rate * dwell;
        t += dwell;
        jumps += 1;
        if jumps > max_jumps {
            return Err(MarkovError::LimitExceeded {
                context: format!("simulation exceeded {max_jumps} jumps"),
            });
        }
        // Choose the successor via the jump chain.
        let outgoing: Vec<(usize, f64)> = ctmc
            .generator()
            .row(state)
            .filter(|&(c, v)| c != state && v > 0.0)
            .collect();
        let next = rng.categorical(&outgoing, exit);
        accumulated += impulse_of(reward, state, next);
        state = next;
    }
}

fn impulse_of(reward: &RewardStructure, from: usize, to: usize) -> f64 {
    reward.impulse(from, to)
}

/// Empirical distribution of the accumulated reward over `[0, horizon]` —
/// Meyer's performability distribution, by simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulatedRewardDistribution {
    samples: Vec<f64>,
}

impl AccumulatedRewardDistribution {
    /// Collects `replications` independent paths.
    ///
    /// # Errors
    ///
    /// Propagates path failures.
    pub fn collect(
        ctmc: &Ctmc,
        pi0: &[f64],
        reward: &RewardStructure,
        horizon: f64,
        replications: usize,
        seed: u64,
    ) -> Result<Self> {
        let n = replications.max(1);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = ChainRng::from_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let out = simulate_path(ctmc, pi0, reward, horizon, 100_000_000, &mut rng)?;
            samples.push(out.accumulated_reward);
        }
        samples.sort_by(f64::total_cmp);
        Ok(AccumulatedRewardDistribution { samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty (cannot happen via [`Self::collect`]).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Empirical CDF `P[AR(t) ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.samples.partition_point(|&s| s <= x) as f64 / self.samples.len() as f64
    }

    /// Sample mean (→ the expected accumulated reward).
    pub fn mean(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Nearest-rank quantile.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level in [0, 1]");
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{self, Options};

    fn two_state() -> Ctmc {
        Ctmc::from_transitions(2, [(0, 1, 2.0), (1, 0, 3.0)]).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let c = two_state();
        let r = RewardStructure::from_rates(vec![1.0, 0.0]);
        let mut a = ChainRng::from_seed(5);
        let mut b = ChainRng::from_seed(5);
        let pa = simulate_path(&c, &[1.0, 0.0], &r, 10.0, 1_000_000, &mut a).unwrap();
        let pb = simulate_path(&c, &[1.0, 0.0], &r, 10.0, 1_000_000, &mut b).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn mean_accumulated_matches_analytic() {
        let c = two_state();
        let r = RewardStructure::from_rates(vec![1.0, 0.0]);
        let t = 5.0;
        let l = transient::occupancy(&c, &[1.0, 0.0], t, &Options::default()).unwrap();
        let analytic = r.accumulated(&c, &l).unwrap();
        let d = AccumulatedRewardDistribution::collect(&c, &[1.0, 0.0], &r, t, 4000, 11).unwrap();
        assert!(
            (d.mean() - analytic).abs() < 0.06,
            "simulated {} vs analytic {analytic}",
            d.mean()
        );
        assert_eq!(d.len(), 4000);
        assert!(!d.is_empty());
    }

    #[test]
    fn impulse_rewards_counted_at_jumps() {
        // Pure death with impulse 1 on the single transition: accumulated
        // impulse is exactly 1 on every path that jumps, and the jump
        // happens with probability 1 − e^{−µt}.
        let mu = 0.5;
        let c = Ctmc::from_transitions(2, [(0, 1, mu)]).unwrap();
        let r = RewardStructure::from_rates(vec![0.0, 0.0]).with_impulse(0, 1, 1.0);
        let t = 2.0;
        let n = 4000;
        let d = AccumulatedRewardDistribution::collect(&c, &[1.0, 0.0], &r, t, n, 3).unwrap();
        let want = 1.0 - (-mu * t).exp();
        assert!((d.mean() - want).abs() < 0.03, "{} vs {want}", d.mean());
        // Each sample is exactly 0 or 1.
        assert!(d.cdf(0.5) > 0.0);
        assert!((d.cdf(0.5) - (1.0 - want)).abs() < 0.03);
    }

    #[test]
    fn absorbing_state_coasts_to_horizon() {
        let c = Ctmc::from_transitions(2, [(0, 1, 100.0)]).unwrap();
        let r = RewardStructure::from_rates(vec![0.0, 2.0]);
        let mut rng = ChainRng::from_seed(1);
        let out = simulate_path(&c, &[1.0, 0.0], &r, 10.0, 1_000_000, &mut rng).unwrap();
        assert_eq!(out.final_state, 1);
        assert_eq!(out.jumps, 1);
        assert!(out.accumulated_reward > 19.0 && out.accumulated_reward < 20.0);
        assert_eq!(out.final_rate, 2.0);
    }

    #[test]
    fn jump_budget_enforced() {
        let c = two_state();
        let r = RewardStructure::from_rates(vec![0.0, 0.0]);
        let mut rng = ChainRng::from_seed(1);
        assert!(matches!(
            simulate_path(&c, &[1.0, 0.0], &r, 1e9, 10, &mut rng),
            Err(MarkovError::LimitExceeded { .. })
        ));
    }

    #[test]
    fn cdf_and_quantiles_consistent() {
        let c = two_state();
        let r = RewardStructure::from_rates(vec![1.0, 0.0]);
        let d = AccumulatedRewardDistribution::collect(&c, &[0.5, 0.5], &r, 3.0, 1000, 7).unwrap();
        let med = d.quantile(0.5);
        assert!(d.cdf(med) >= 0.5);
        assert!(d.quantile(0.0) <= d.quantile(1.0));
        assert!(d.quantile(1.0) <= 3.0 + 1e-12);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let c = two_state();
        let r = RewardStructure::from_rates(vec![1.0, 0.0]);
        let mut rng = ChainRng::from_seed(1);
        assert!(simulate_path(&c, &[0.5, 0.6], &r, 1.0, 10, &mut rng).is_err());
        assert!(simulate_path(&c, &[1.0, 0.0], &r, -1.0, 10, &mut rng).is_err());
        let bad = RewardStructure::from_rates(vec![1.0]);
        assert!(simulate_path(&c, &[1.0, 0.0], &bad, 1.0, 10, &mut rng).is_err());
    }
}
