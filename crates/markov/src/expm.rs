//! Dense matrix exponential by scaling-and-squaring with Padé(13)
//! approximants (Higham 2005), plus the block-augmentation trick for the
//! integral `∫₀ᵗ e^{Qs} ds` needed by accumulated-reward solutions.
//!
//! Uniformization is the method of choice for CTMC transients, but its cost
//! grows linearly in `Λ·t`. The guarded-operation models are *stiff*:
//! message rates are ~10³/h while the horizons are ~10⁴ h, so `Λ·t ≈ 10⁷⁻⁸`.
//! For the small state spaces produced by the GSU SANs (tens to hundreds of
//! states), the dense exponential costs `O(n³ log(‖Q‖t))` and wins by orders
//! of magnitude. The `ablation_uniformization` bench quantifies this.

use sparsela::{DenseMatrix, LinAlgError};

use crate::{MarkovError, Result};

/// Padé(13) numerator coefficients (Higham, *The scaling and squaring method
/// for the matrix exponential revisited*, 2005).
const PADE13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// The ∞-norm threshold below which a single Padé(13) evaluation meets
/// double-precision accuracy.
const THETA13: f64 = 5.371_920_351_148_152;

/// Computes `exp(A)` for a square dense matrix.
///
/// # Errors
///
/// * [`MarkovError::InvalidModel`] when `A` is not square or contains
///   non-finite entries.
/// * [`MarkovError::LinAlg`] when the internal Padé solve fails (does not
///   happen for generator matrices).
pub fn expm(a: &DenseMatrix) -> Result<DenseMatrix> {
    if a.rows() != a.cols() {
        return Err(MarkovError::InvalidModel {
            context: format!(
                "expm requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if !sparsela::vector::all_finite(a.as_slice()) {
        return Err(MarkovError::InvalidModel {
            context: "expm input contains non-finite entries".to_string(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(DenseMatrix::zeros(0, 0));
    }

    // Scaling: bring ‖A/2^s‖∞ under the Padé(13) threshold.
    let norm = a.norm_inf();
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    // Each squaring doubles the covered horizon, so `s` plays the role an
    // iteration count plays for the sweep solvers: it is the deterministic
    // work knob of the method, and feeds the same flight-recorder and
    // work-ratchet channels.
    telemetry::work::count_expm(1);
    telemetry::work::count_iterations(s as u64);
    let mut span = telemetry::span("markov.solve.expm");
    let mut flight = telemetry::SolveDiag::new("expm");
    flight.iterations = s as u64;
    flight.record_on(&mut span);
    let mut scaled = a.clone();
    scaled.scale(0.5f64.powi(s as i32));

    let mut r = pade13(&scaled)?;
    for _ in 0..s {
        r = r.mul(&r)?;
    }
    Ok(r)
}

/// Computes `exp(A)` and the integral `F = ∫₀¹ exp(A·u) du · A`… more
/// usefully phrased: returns `(E, F)` with `E = exp(A)` and
/// `F = ∫₀¹ exp(A·s) ds` evaluated via the block augmentation
///
/// ```text
/// exp([[A, I], [0, 0]]) = [[exp(A), ∫₀¹ exp(A·s) ds], [0, I]]
/// ```
///
/// To integrate over `[0, t]`, pass `A = Q·t` and multiply the returned `F`
/// by `t` (see [`expm_with_integral_scaled`]).
///
/// # Errors
///
/// Same failure modes as [`expm`].
pub fn expm_with_integral(a: &DenseMatrix) -> Result<(DenseMatrix, DenseMatrix)> {
    if a.rows() != a.cols() {
        return Err(MarkovError::InvalidModel {
            context: format!(
                "expm_with_integral requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    let n = a.rows();
    let mut block = DenseMatrix::zeros(2 * n, 2 * n);
    for r in 0..n {
        for c in 0..n {
            block[(r, c)] = a[(r, c)];
        }
        block[(r, n + r)] = 1.0;
    }
    let e = expm(&block)?;
    let mut top_left = DenseMatrix::zeros(n, n);
    let mut top_right = DenseMatrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            top_left[(r, c)] = e[(r, c)];
            top_right[(r, c)] = e[(r, n + c)];
        }
    }
    Ok((top_left, top_right))
}

/// Returns `(exp(Q·t), ∫₀ᵗ exp(Q·s) ds)`.
///
/// # Errors
///
/// Same failure modes as [`expm`].
pub fn expm_with_integral_scaled(q: &DenseMatrix, t: f64) -> Result<(DenseMatrix, DenseMatrix)> {
    if !t.is_finite() || t < 0.0 {
        return Err(MarkovError::InvalidModel {
            context: format!("time horizon must be finite and >= 0, got {t}"),
        });
    }
    let mut qt = q.clone();
    qt.scale(t);
    // exp([[Qt, I],[0,0]]) gives ∫₀¹ exp(Qt·u) du = (1/t)∫₀ᵗ exp(Q·s) ds.
    let (e, mut f) = expm_with_integral(&qt)?;
    f.scale(t);
    Ok((e, f))
}

/// Single Padé(13) rational approximation `r13(A) ≈ exp(A)` for
/// `‖A‖∞ ≤ θ13`.
fn pade13(a: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.rows();
    let ident = DenseMatrix::identity(n);
    let a2 = a.mul(a)?;
    let a4 = a2.mul(&a2)?;
    let a6 = a2.mul(&a4)?;
    let b = &PADE13;

    // U = A · (A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
    let mut inner_u = DenseMatrix::zeros(n, n);
    inner_u.add_scaled(b[13], &a6).map_err(MarkovError::from)?;
    inner_u.add_scaled(b[11], &a4).map_err(MarkovError::from)?;
    inner_u.add_scaled(b[9], &a2).map_err(MarkovError::from)?;
    let mut u = a6.mul(&inner_u)?;
    u.add_scaled(b[7], &a6).map_err(MarkovError::from)?;
    u.add_scaled(b[5], &a4).map_err(MarkovError::from)?;
    u.add_scaled(b[3], &a2).map_err(MarkovError::from)?;
    u.add_scaled(b[1], &ident).map_err(MarkovError::from)?;
    let u = a.mul(&u)?;

    // V = A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
    let mut inner_v = DenseMatrix::zeros(n, n);
    inner_v.add_scaled(b[12], &a6).map_err(MarkovError::from)?;
    inner_v.add_scaled(b[10], &a4).map_err(MarkovError::from)?;
    inner_v.add_scaled(b[8], &a2).map_err(MarkovError::from)?;
    let mut v = a6.mul(&inner_v)?;
    v.add_scaled(b[6], &a6).map_err(MarkovError::from)?;
    v.add_scaled(b[4], &a4).map_err(MarkovError::from)?;
    v.add_scaled(b[2], &a2).map_err(MarkovError::from)?;
    v.add_scaled(b[0], &ident).map_err(MarkovError::from)?;

    // Solve (V − U)·R = (V + U) column by column.
    let mut vm = v.clone();
    vm.add_scaled(-1.0, &u).map_err(MarkovError::from)?;
    let mut vp = v;
    vp.add_scaled(1.0, &u).map_err(MarkovError::from)?;

    let lu = vm.lu().map_err(|e| match e {
        LinAlgError::Singular { pivot } => MarkovError::LinAlg(LinAlgError::Singular { pivot }),
        other => MarkovError::LinAlg(other),
    })?;
    let mut r = DenseMatrix::zeros(n, n);
    let mut col = vec![0.0; n];
    for c in 0..n {
        for (ri, item) in col.iter_mut().enumerate() {
            *item = vp[(ri, c)];
        }
        let x = lu.solve(&col)?;
        for (ri, &item) in x.iter().enumerate() {
            r[(ri, c)] = item;
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .fold(0.0, |m, (x, y)| m.max((x - y).abs()))
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = DenseMatrix::zeros(3, 3);
        let e = expm(&z).unwrap();
        assert_eq!(max_abs_diff(&e, &DenseMatrix::identity(3)), 0.0);
    }

    #[test]
    fn exp_of_diagonal() {
        let mut d = DenseMatrix::zeros(2, 2);
        d[(0, 0)] = 1.0;
        d[(1, 1)] = -2.0;
        let e = expm(&d).unwrap();
        assert!((e[(0, 0)] - 1f64.exp()).abs() < 1e-12);
        assert!((e[(1, 1)] - (-2f64).exp()).abs() < 1e-12);
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_nilpotent() {
        // N = [[0,1],[0,0]] => exp(N) = I + N exactly.
        let mut nmat = DenseMatrix::zeros(2, 2);
        nmat[(0, 1)] = 1.0;
        let e = expm(&nmat).unwrap();
        assert!((e[(0, 0)] - 1.0).abs() < 1e-14);
        assert!((e[(0, 1)] - 1.0).abs() < 1e-13);
        assert!((e[(1, 1)] - 1.0).abs() < 1e-14);
        assert!(e[(1, 0)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_rotation_generator() {
        // A = [[0, -θ],[θ, 0]] => exp(A) = rotation by θ.
        let theta = 1.3;
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = -theta;
        a[(1, 0)] = theta;
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - theta.cos()).abs() < 1e-12);
        assert!((e[(0, 1)] + theta.sin()).abs() < 1e-12);
        assert!((e[(1, 0)] - theta.sin()).abs() < 1e-12);
    }

    #[test]
    fn generator_exponential_is_stochastic_even_when_stiff() {
        // Two-state generator with a huge rate and long horizon: Q·t has
        // norm ~1e8, exercising deep scaling.
        let q = DenseMatrix::from_rows(&[&[-5000.0, 5000.0], &[1000.0, -1000.0]]);
        let mut qt = q.clone();
        qt.scale(10_000.0);
        let e = expm(&qt).unwrap();
        for r in 0..2 {
            let sum: f64 = (0..2).map(|c| e[(r, c)]).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
            for c in 0..2 {
                assert!(e[(r, c)] >= -1e-9);
            }
        }
        // Should equal the steady state (1/6, 5/6) to high accuracy.
        assert!((e[(0, 0)] - 1.0 / 6.0).abs() < 1e-6);
        assert!((e[(0, 1)] - 5.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn semigroup_property() {
        let a = DenseMatrix::from_rows(&[&[-1.0, 1.0, 0.0], &[0.5, -1.5, 1.0], &[0.2, 0.0, -0.2]]);
        let e1 = expm(&a).unwrap();
        let mut a2 = a.clone();
        a2.scale(2.0);
        let e2 = expm(&a2).unwrap();
        let e1e1 = e1.mul(&e1).unwrap();
        assert!(max_abs_diff(&e2, &e1e1) < 1e-10);
    }

    #[test]
    fn integral_of_zero_generator_is_t_identity() {
        let q = DenseMatrix::zeros(2, 2);
        let (e, f) = expm_with_integral_scaled(&q, 3.0).unwrap();
        assert!(max_abs_diff(&e, &DenseMatrix::identity(2)) < 1e-13);
        let mut ti = DenseMatrix::identity(2);
        ti.scale(3.0);
        assert!(max_abs_diff(&f, &ti) < 1e-12);
    }

    #[test]
    fn integral_matches_quadrature() {
        let q = DenseMatrix::from_rows(&[&[-2.0, 2.0], &[1.0, -1.0]]);
        let t = 1.5;
        let (_, f) = expm_with_integral_scaled(&q, t).unwrap();
        // Simpson quadrature of ∫₀ᵗ exp(Q·s) ds.
        let steps = 2000;
        let h = t / steps as f64;
        let mut acc = DenseMatrix::zeros(2, 2);
        for i in 0..=steps {
            let mut qs = q.clone();
            qs.scale(i as f64 * h);
            let e = expm(&qs).unwrap();
            let w = if i == 0 || i == steps {
                1.0
            } else if i % 2 == 1 {
                4.0
            } else {
                2.0
            };
            acc.add_scaled(w * h / 3.0, &e).unwrap();
        }
        assert!(max_abs_diff(&f, &acc) < 1e-6);
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(expm(&DenseMatrix::zeros(2, 3)).is_err());
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 0)] = f64::NAN;
        assert!(expm(&a).is_err());
        let q = DenseMatrix::zeros(2, 2);
        assert!(expm_with_integral_scaled(&q, -1.0).is_err());
        assert!(expm_with_integral_scaled(&q, f64::INFINITY).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = expm(&DenseMatrix::zeros(0, 0)).unwrap();
        assert_eq!(e.rows(), 0);
    }
}
