use std::fmt;

use sparsela::LinAlgError;

/// Errors produced by the Markov model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// The supplied data does not describe a valid chain (negative rates,
    /// out-of-range states, non-stochastic rows, …).
    InvalidModel {
        /// Description of the violation.
        context: String,
    },
    /// The supplied vector is not a probability distribution over the chain's
    /// state space.
    InvalidDistribution {
        /// Description of the violation.
        context: String,
    },
    /// The requested analysis needs an irreducible chain but the chain is
    /// reducible.
    Reducible {
        /// Number of strongly connected components found.
        components: usize,
    },
    /// The requested analysis needs absorbing states but none exist (or vice
    /// versa).
    AbsorptionStructure {
        /// Description of the structural mismatch.
        context: String,
    },
    /// The problem exceeds a configured resource limit (e.g. dense-solver
    /// state-count cap, uniformization step budget).
    LimitExceeded {
        /// Description of the limit and the offending size.
        context: String,
    },
    /// An underlying linear-algebra operation failed.
    LinAlg(LinAlgError),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidModel { context } => {
                write!(f, "invalid Markov model: {context}")
            }
            MarkovError::InvalidDistribution { context } => {
                write!(f, "invalid probability distribution: {context}")
            }
            MarkovError::Reducible { components } => write!(
                f,
                "chain is reducible ({components} strongly connected components)"
            ),
            MarkovError::AbsorptionStructure { context } => {
                write!(f, "absorption structure mismatch: {context}")
            }
            MarkovError::LimitExceeded { context } => {
                write!(f, "resource limit exceeded: {context}")
            }
            MarkovError::LinAlg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for MarkovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MarkovError::LinAlg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinAlgError> for MarkovError {
    fn from(e: LinAlgError) -> Self {
        MarkovError::LinAlg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<MarkovError> = vec![
            MarkovError::InvalidModel {
                context: "negative rate".into(),
            },
            MarkovError::InvalidDistribution {
                context: "sums to 2".into(),
            },
            MarkovError::Reducible { components: 3 },
            MarkovError::AbsorptionStructure {
                context: "no absorbing states".into(),
            },
            MarkovError::LimitExceeded {
                context: "10^9 uniformization steps".into(),
            },
            MarkovError::LinAlg(LinAlgError::Singular { pivot: 0 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_linalg() {
        use std::error::Error;
        let e = MarkovError::LinAlg(LinAlgError::Singular { pivot: 1 });
        assert!(e.source().is_some());
        let e2 = MarkovError::Reducible { components: 2 };
        assert!(e2.source().is_none());
    }
}
