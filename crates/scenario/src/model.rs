//! Lowering scenarios to SAN reward models.
//!
//! Each [`ScenarioSpec`] compiles to generalized versions of the paper's
//! three models, built to **reduce exactly** to `rmgd`/`rmgp`/`rmnd` when
//! the scenario is paper-shaped (one escort, exponential safeguards, no
//! waves / decay / aging) — the reduction tests below assert this:
//!
//! * [`build_gd`] — the guarded-operation dependability model with `n`
//!   escorted processes in a *star* topology (escorts exchange messages
//!   with the upgraded pair only, not with each other), optional upgrade
//!   waves lowering µ_new, marking-dependent AT coverage, and escort
//!   aging/rejuvenation;
//! * [`build_np`] — the normal-mode model over `n + 1` processes (same
//!   star topology; aging is not carried into normal-mode models, which
//!   start from a clean state at the mode switch, as in the paper);
//! * [`build_gp`] — the MDCD overhead model with acceptance-test and
//!   checkpoint durations expanded through their
//!   [`markov::phase_type::PhaseType`] representations. The overhead is
//!   modelled on the single representative escorted pair; with `n > 1`
//!   each escort pays the same per-pair overhead `ρ2`.

use performability::gsu::GopStateSets;
use performability::Result;
use san::{Activity, Case, Marking, PlaceId, RewardSpec, SanModel};

use crate::ast::{Dist, ScenarioSpec};

/// The places of the generalized guarded-operation dependability model.
#[derive(Debug, Clone)]
pub struct GdPlaces {
    /// Actual contamination of the upgraded component `P1new`.
    pub p1n_ctn: PlaceId,
    /// Actual contamination of the shadow old version `P1old`.
    pub p1o_ctn: PlaceId,
    /// Actual contamination of each escorted process.
    pub escort_ctn: Vec<PlaceId>,
    /// Perceived potential contamination (dirty bit) of each escort.
    pub escort_dirty: Vec<PlaceId>,
    /// Aged flag per escort (empty unless the scenario models aging).
    pub aged: Vec<PlaceId>,
    /// Completed upgrade waves (present only with a wave spec).
    pub wave: Option<PlaceId>,
    /// An error has been detected (recovery happened).
    pub detected: PlaceId,
    /// System failure (absorbing).
    pub failure: PlaceId,
}

impl GopStateSets for GdPlaces {
    fn in_a1(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0 && mk.tokens(self.failure) == 0
    }
    fn in_a2(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0
    }
    fn in_a3(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1 && mk.tokens(self.failure) == 0
    }
    fn in_a4(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 0 && mk.tokens(self.failure) == 1
    }
    fn detected_then_failed(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1 && mk.tokens(self.failure) == 1
    }
    fn is_detected(&self, mk: &Marking) -> bool {
        mk.tokens(self.detected) == 1
    }
}

/// A built generalized dependability model plus its place handles.
#[derive(Debug)]
pub struct Gd {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: GdPlaces,
}

/// Builds the generalized guarded-operation dependability model.
///
/// # Errors
///
/// Propagates SAN construction failures.
pub fn build_gd(spec: &ScenarioSpec) -> Result<Gd> {
    let n = spec.escorts;
    let p = &spec.params;
    let lambda = p.lambda;
    let p_ext = p.p_ext;
    let c = p.coverage;
    let decay = spec.coverage_decay;
    let mu_new = p.mu_new;
    let mu_old = p.mu_old;

    let mut m = SanModel::new("GMGd");
    let p1n_ctn = m.add_place("P1Nctn", 0);
    let p1o_ctn = m.add_place("P1Octn", 0);
    let escort_ctn: Vec<PlaceId> = (0..n).map(|i| m.add_place(format!("E{i}ctn"), 0)).collect();
    let escort_dirty: Vec<PlaceId> = (0..n).map(|i| m.add_place(format!("E{i}db"), 0)).collect();
    let aged: Vec<PlaceId> = if spec.aging.is_some() {
        (0..n)
            .map(|i| m.add_place(format!("E{i}aged"), 0))
            .collect()
    } else {
        Vec::new()
    };
    let wave = spec.waves.as_ref().map(|_| m.add_place("wave", 0));
    let detected = m.add_place("detected", 0);
    let failure = m.add_place("failure", 0);

    let live = move |mk: &Marking| mk.tokens(failure) == 0;
    let gop = move |mk: &Marking| mk.tokens(failure) == 0 && mk.tokens(detected) == 0;
    let recovered = move |mk: &Marking| mk.tokens(failure) == 0 && mk.tokens(detected) == 1;

    // Marking-dependent AT coverage: each contaminated process *beyond the
    // sender* makes the acceptance test less likely to catch the error
    // (error symptoms spread over several states confound the check). With
    // `decay = 0` this is the constant `c` of the paper, since the sender
    // itself is always contaminated when a detection case is weighed.
    let ctn_all: Vec<PlaceId> = [p1n_ctn, p1o_ctn]
        .into_iter()
        .chain(escort_ctn.iter().copied())
        .collect();
    let c_eff = {
        let ctn_all = ctn_all.clone();
        move |mk: &Marking| {
            let extra = ctn_all
                .iter()
                .map(|&pl| mk.tokens(pl))
                .sum::<u32>()
                .saturating_sub(1);
            (c - decay * extra as f64).clamp(0.0, 1.0)
        }
    };

    // --- Canonicalizing output gates ---------------------------------------
    // As in `rmgd`: failure and detection collapse the now-irrelevant
    // contamination / dirty / wave markings into a single state. The aged
    // flags are physical escort state and survive *detection* (normal mode
    // continues to run the escorts), but are cleared at the absorbing
    // failure states.
    let og_fail = {
        let ctn_all = ctn_all.clone();
        let dirty = escort_dirty.clone();
        let aged = aged.clone();
        m.add_output_gate("fail", move |mk| {
            mk.set_tokens(failure, 1);
            for &pl in ctn_all.iter().chain(&dirty).chain(&aged) {
                mk.set_tokens(pl, 0);
            }
            if let Some(w) = wave {
                mk.set_tokens(w, 0);
            }
        })
    };
    let og_detect = {
        let ctn_all = ctn_all.clone();
        let dirty = escort_dirty.clone();
        m.add_output_gate("detected", move |mk| {
            mk.set_tokens(detected, 1);
            for &pl in ctn_all.iter().chain(&dirty) {
                mk.set_tokens(pl, 0);
            }
            if let Some(w) = wave {
                mk.set_tokens(w, 0);
            }
        })
    };
    // A clean external message of P1new passes its AT: confidence in the
    // whole P1new message lineage is restored, every escort dirty bit
    // resets (`P1Nok_ext` generalized).
    let og_p1n_pass = {
        let dirty = escort_dirty.clone();
        m.add_output_gate("p1n_ok_ext", move |mk| {
            for &d in &dirty {
                mk.set_tokens(d, 0);
            }
        })
    };

    // --- Fault manifestations ----------------------------------------------
    // The upgraded component: with waves, each completed wave multiplies
    // µ_new by the wave factor (floored at µ_old).
    let p1n_fm = match &spec.waves {
        Some(w) => {
            let w = w.clone();
            let Some(wave_pl) = wave else {
                unreachable!("wave place exists with a wave spec")
            };
            Activity::timed_fn("P1Nfm", move |mk| {
                w.mu_at(mk.tokens(wave_pl), mu_new, mu_old)
            })
        }
        None => Activity::timed("P1Nfm", mu_new),
    };
    m.add_activity(
        p1n_fm
            .with_enabling(move |mk| gop(mk) && mk.tokens(p1n_ctn) == 0)
            .with_output_arc(p1n_ctn, 1),
    )?;
    m.add_activity(
        Activity::timed("P1Ofm", mu_old)
            .with_enabling(move |mk| live(mk) && mk.tokens(p1o_ctn) == 0)
            .with_output_arc(p1o_ctn, 1),
    )?;
    if let Some(w) = &spec.waves {
        let Some(wave_pl) = wave else {
            unreachable!("wave place exists with a wave spec")
        };
        let last = (w.count - 1) as u32;
        m.add_activity(
            Activity::timed("WaveAdv", w.rate)
                .with_enabling(move |mk| gop(mk) && mk.tokens(wave_pl) < last)
                .with_output_arc(wave_pl, 1),
        )?;
    }
    for i in 0..n {
        let e_ctn = escort_ctn[i];
        let e_fm = match &spec.aging {
            Some(a) => {
                let aged_pl = aged[i];
                let factor = a.factor;
                Activity::timed_fn(format!("E{i}fm"), move |mk| {
                    if mk.tokens(aged_pl) == 1 {
                        mu_old * factor
                    } else {
                        mu_old
                    }
                })
            }
            None => Activity::timed(format!("E{i}fm"), mu_old),
        };
        m.add_activity(
            e_fm.with_enabling(move |mk| live(mk) && mk.tokens(e_ctn) == 0)
                .with_output_arc(e_ctn, 1),
        )?;
        if let Some(a) = &spec.aging {
            let aged_pl = aged[i];
            m.add_activity(
                Activity::timed(format!("E{i}age"), a.rate)
                    .with_enabling(move |mk| live(mk) && mk.tokens(aged_pl) == 0)
                    .with_output_arc(aged_pl, 1),
            )?;
            if let Some(r) = a.rejuvenation {
                let og = m.add_output_gate(format!("e{i}_rejuvenate"), move |mk| {
                    mk.set_tokens(aged_pl, 0)
                });
                m.add_activity(
                    Activity::timed(format!("E{i}rejuv"), r)
                        .with_enabling(move |mk| live(mk) && mk.tokens(aged_pl) == 1)
                        .with_output_gate(og),
                )?;
            }
        }
    }

    // --- P1new message sending under G-OP ----------------------------------
    // As in `rmgd`, but an internal message goes to each escort with equal
    // probability (star topology).
    let mut p1n_msg = Activity::timed("P1Nmsg", lambda)
        .with_enabling(gop)
        .with_case(
            Case::with_probability_fn({
                let ce = c_eff.clone();
                move |mk| {
                    if mk.tokens(p1n_ctn) == 1 {
                        p_ext * ce(mk)
                    } else {
                        0.0
                    }
                }
            })
            .with_output_gate(og_detect),
        )
        .with_case(
            Case::with_probability_fn({
                let ce = c_eff.clone();
                move |mk| {
                    if mk.tokens(p1n_ctn) == 1 {
                        p_ext * (1.0 - ce(mk))
                    } else {
                        0.0
                    }
                }
            })
            .with_output_gate(og_fail),
        )
        .with_case(
            Case::with_probability_fn(move |mk| if mk.tokens(p1n_ctn) == 0 { p_ext } else { 0.0 })
                .with_output_gate(og_p1n_pass),
        );
    for i in 0..n {
        let e_ctn = escort_ctn[i];
        let e_db = escort_dirty[i];
        let og = m.add_output_gate(format!("p1n_internal_{i}"), move |mk| {
            if mk.tokens(p1n_ctn) == 1 {
                mk.set_tokens(e_ctn, 1);
            }
            mk.set_tokens(e_db, 1);
        });
        p1n_msg = p1n_msg
            .with_case(Case::with_probability((1.0 - p_ext) / n as f64).with_output_gate(og));
    }
    m.add_activity(p1n_msg)?;

    // --- Escort message sending under G-OP ----------------------------------
    // Each escort follows the `P2msg` pattern of `rmgd`, including the
    // believed-clean slip-failure case; its internal messages contaminate
    // the upgraded pair.
    for i in 0..n {
        let e_ctn = escort_ctn[i];
        let e_db = escort_dirty[i];
        let og_pass = m.add_output_gate(format!("e{i}_ok_ext"), move |mk| mk.set_tokens(e_db, 0));
        let og_internal = m.add_output_gate(format!("e{i}_internal_gop"), move |mk| {
            if mk.tokens(e_ctn) == 1 {
                mk.set_tokens(p1n_ctn, 1);
                mk.set_tokens(p1o_ctn, 1);
            }
        });
        m.add_activity(
            Activity::timed(format!("E{i}msg"), lambda)
                .with_enabling(move |mk| gop(mk) && (mk.tokens(e_ctn) == 1 || mk.tokens(e_db) == 1))
                .with_case(
                    Case::with_probability_fn({
                        let ce = c_eff.clone();
                        move |mk| {
                            if mk.tokens(e_db) == 1 && mk.tokens(e_ctn) == 1 {
                                p_ext * ce(mk)
                            } else {
                                0.0
                            }
                        }
                    })
                    .with_output_gate(og_detect),
                )
                .with_case(
                    Case::with_probability_fn({
                        let ce = c_eff.clone();
                        move |mk| {
                            if mk.tokens(e_db) == 1 && mk.tokens(e_ctn) == 1 {
                                p_ext * (1.0 - ce(mk))
                            } else {
                                0.0
                            }
                        }
                    })
                    .with_output_gate(og_fail),
                )
                .with_case(
                    Case::with_probability_fn(move |mk| {
                        if mk.tokens(e_db) == 1 && mk.tokens(e_ctn) == 0 {
                            p_ext
                        } else {
                            0.0
                        }
                    })
                    .with_output_gate(og_pass),
                )
                .with_case(
                    Case::with_probability_fn(move |mk| {
                        if mk.tokens(e_db) == 0 && mk.tokens(e_ctn) == 1 {
                            p_ext
                        } else {
                            0.0
                        }
                    })
                    .with_output_gate(og_fail),
                )
                .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_internal)),
        )?;
    }

    // --- Normal mode after recovery -----------------------------------------
    // P1old serves the mission alongside the escorts; no safeguards run.
    let mut p1o_msg = Activity::timed("P1Omsg", lambda)
        .with_enabling(move |mk| recovered(mk) && mk.tokens(p1o_ctn) == 1)
        .with_case(Case::with_probability(p_ext).with_output_gate(og_fail));
    for (i, &e_ctn) in escort_ctn.iter().enumerate() {
        let og = m.add_output_gate(format!("p1o_internal_norm_{i}"), move |mk| {
            mk.set_tokens(e_ctn, 1)
        });
        p1o_msg = p1o_msg
            .with_case(Case::with_probability((1.0 - p_ext) / n as f64).with_output_gate(og));
    }
    m.add_activity(p1o_msg)?;
    let og_e_norm = m.add_output_gate("e_internal_norm", move |mk| mk.set_tokens(p1o_ctn, 1));
    for (i, &e_ctn) in escort_ctn.iter().enumerate() {
        m.add_activity(
            Activity::timed(format!("E{i}msgN"), lambda)
                .with_enabling(move |mk| recovered(mk) && mk.tokens(e_ctn) == 1)
                .with_case(Case::with_probability(p_ext).with_output_gate(og_fail))
                .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_e_norm)),
        )?;
    }

    Ok(Gd {
        model: m,
        places: GdPlaces {
            p1n_ctn,
            p1o_ctn,
            escort_ctn,
            escort_dirty,
            aged,
            wave,
            detected,
            failure,
        },
    })
}

/// The places of the generalized normal-mode model.
#[derive(Debug, Clone)]
pub struct NpPlaces {
    /// Contamination per process; index 0 is the first (µ_first) component.
    pub ctn: Vec<PlaceId>,
    /// System failure (absorbing).
    pub failure: PlaceId,
}

/// A built generalized normal-mode model plus its place handles.
#[derive(Debug)]
pub struct Np {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: NpPlaces,
}

/// Builds the generalized normal-mode model over `escorts + 1` processes:
/// the first component manifests faults at `mu_first`, every escort at
/// µ_old; contaminated internal messages spread along the star topology
/// and contaminated external messages fail the system (no safeguards).
///
/// # Errors
///
/// Propagates SAN construction failures.
pub fn build_np(spec: &ScenarioSpec, mu_first: f64) -> Result<Np> {
    let n = spec.escorts;
    let p = &spec.params;
    let lambda = p.lambda;
    let p_ext = p.p_ext;
    let mu_old = p.mu_old;

    let mut m = SanModel::new("GMNd");
    let ctn: Vec<PlaceId> = (0..=n)
        .map(|i| m.add_place(format!("P{i}ctn"), 0))
        .collect();
    let failure = m.add_place("failure", 0);
    let live = move |mk: &Marking| mk.tokens(failure) == 0;

    let og_fail = {
        let ctn = ctn.clone();
        m.add_output_gate("fail", move |mk| {
            mk.set_tokens(failure, 1);
            for &pl in &ctn {
                mk.set_tokens(pl, 0);
            }
        })
    };

    for i in 0..=n {
        let ci = ctn[i];
        let rate = if i == 0 { mu_first } else { mu_old };
        m.add_activity(
            Activity::timed(format!("P{i}fm"), rate)
                .with_enabling(move |mk| live(mk) && mk.tokens(ci) == 0)
                .with_output_arc(ci, 1),
        )?;
        let mut msg = Activity::timed(format!("P{i}msg"), lambda)
            .with_enabling(move |mk| live(mk) && mk.tokens(ci) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_fail));
        if i == 0 {
            for (j, &cj) in ctn.iter().enumerate().skip(1) {
                let og = m.add_output_gate(format!("p0_to_p{j}"), move |mk| mk.set_tokens(cj, 1));
                msg = msg.with_case(
                    Case::with_probability((1.0 - p_ext) / n as f64).with_output_gate(og),
                );
            }
        } else {
            let c0 = ctn[0];
            let og = m.add_output_gate(format!("p{i}_to_p0"), move |mk| mk.set_tokens(c0, 1));
            msg = msg.with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og));
        }
        m.add_activity(msg)?;
    }

    Ok(Np {
        model: m,
        places: NpPlaces { ctn, failure },
    })
}

/// The places of the generalized overhead model (the `RMGp` layout).
#[derive(Debug, Clone, Copy)]
pub struct GpPlaces {
    /// `P1new` ready to make forward progress.
    pub p1n_ready: PlaceId,
    /// `P1new` blocked on an AT of its own external message.
    pub p1n_ext: PlaceId,
    /// `P2` blocked establishing a checkpoint for a `P1new` internal message.
    pub p1n_int: PlaceId,
    /// `P2` ready to make forward progress.
    pub p2_ready: PlaceId,
    /// `P2` blocked on an AT of its own external message.
    pub p2_ext: PlaceId,
    /// `P1old` blocked establishing a checkpoint for a `P2` internal message.
    pub p2_int: PlaceId,
    /// `P1old` ready.
    pub p1o_ready: PlaceId,
    /// `P2`'s dirty bit.
    pub p2_db: PlaceId,
    /// `P1old`'s dirty bit.
    pub p1o_db: PlaceId,
}

/// A built generalized overhead model plus its place handles.
#[derive(Debug)]
pub struct Gp {
    /// The SAN.
    pub model: SanModel,
    /// Handles to the places, for reward predicates.
    pub places: GpPlaces,
}

/// Adds a safeguard activity with a general phase-type duration.
///
/// The activity waits for one token in `trigger`; completion consumes the
/// token and applies `on_complete`. An exponential duration stays a single
/// timed activity (so exponential scenarios reduce to `rmgp` exactly); any
/// other law expands into its phase-type representation: an instantaneous
/// dispatch picks the initial phase, timed hops walk the sub-generator, and
/// the exit rates complete the safeguard. The trigger token remains in
/// place throughout the phases, so the Table 2 overhead predicates keep
/// counting the blocked time without modification.
fn add_safeguard(
    m: &mut SanModel,
    name: &str,
    dist: &Dist,
    trigger: PlaceId,
    on_complete: impl Fn(&mut Marking) + Send + Sync + Clone + 'static,
) -> Result<()> {
    if let Dist::Exp { rate } = dist {
        let og = m.add_output_gate(format!("{name}_done"), on_complete);
        m.add_activity(
            Activity::timed(name, *rate)
                .with_input_arc(trigger, 1)
                .with_output_gate(og),
        )?;
        return Ok(());
    }
    let ph = dist.to_phase_type()?;
    let k = ph.n_phases();
    let stage = m.add_place(format!("{name}_stage"), 0);
    let mut dispatch = Activity::instantaneous(format!("{name}_dispatch"))
        .with_enabling(move |mk| mk.tokens(trigger) == 1 && mk.tokens(stage) == 0);
    for (i, &a) in ph.initial().iter().enumerate() {
        if a <= 0.0 {
            continue;
        }
        let og = m.add_output_gate(format!("{name}_enter{i}"), move |mk| {
            mk.set_tokens(stage, i as u32 + 1)
        });
        dispatch = dispatch.with_case(Case::with_probability(a).with_output_gate(og));
    }
    m.add_activity(dispatch)?;
    for i in 0..k {
        let exit = ph.exit_rates()[i];
        if exit > 0.0 {
            let done = on_complete.clone();
            let og = m.add_output_gate(format!("{name}_done{i}"), move |mk| {
                mk.set_tokens(stage, 0);
                done(mk);
            });
            m.add_activity(
                Activity::timed(format!("{name}_exit{i}"), exit)
                    .with_enabling(move |mk| mk.tokens(stage) == i as u32 + 1)
                    .with_input_arc(trigger, 1)
                    .with_output_gate(og),
            )?;
        }
        for j in 0..k {
            if j == i {
                continue;
            }
            let hop = ph.sub_generator()[(i, j)];
            if hop > 0.0 {
                let og = m.add_output_gate(format!("{name}_hop{i}_{j}"), move |mk| {
                    mk.set_tokens(stage, j as u32 + 1)
                });
                m.add_activity(
                    Activity::timed(format!("{name}_hop{i}{j}"), hop)
                        .with_enabling(move |mk| mk.tokens(stage) == i as u32 + 1)
                        .with_output_gate(og),
                )?;
            }
        }
    }
    Ok(())
}

/// Builds the generalized overhead model with phase-type safeguard
/// durations.
///
/// # Errors
///
/// Propagates phase-type compilation and SAN construction failures.
pub fn build_gp(spec: &ScenarioSpec) -> Result<Gp> {
    let p = &spec.params;
    let lambda = p.lambda;
    let p_ext = p.p_ext;

    let mut m = SanModel::new("GMGp");
    let p1n_ready = m.add_place("P1nReady", 1);
    let p1n_ext = m.add_place("P1nExt", 0);
    let p1n_int = m.add_place("P1nInt", 0);
    let p2_ready = m.add_place("P2Ready", 1);
    let p2_ext = m.add_place("P2Ext", 0);
    let p2_int = m.add_place("P2Int", 0);
    let p1o_ready = m.add_place("P1oReady", 1);
    let p2_db = m.add_place("P2DB", 0);
    let p1o_db = m.add_place("P1oDB", 0);

    // P1new's message cycle (as in `rmgp`).
    let og_start_p2_ckpt = m.add_output_gate("p2_ckpt_or_skip", move |mk| {
        if mk.tokens(p2_ready) == 1 && mk.tokens(p2_db) == 0 {
            mk.set_tokens(p2_ready, 0);
            mk.set_tokens(p1n_int, 1);
        }
    });
    m.add_activity(
        Activity::timed("P1nMsg", lambda)
            .with_input_arc(p1n_ready, 1)
            .with_case(Case::with_probability(p_ext).with_output_arc(p1n_ext, 1))
            .with_case(
                Case::with_probability(1.0 - p_ext)
                    .with_output_arc(p1n_ready, 1)
                    .with_output_gate(og_start_p2_ckpt),
            ),
    )?;
    add_safeguard(&mut m, "P1nAT", &spec.at, p1n_ext, move |mk| {
        mk.set_tokens(p1n_ready, 1)
    })?;
    add_safeguard(&mut m, "P2_CKPT", &spec.ckpt, p1n_int, move |mk| {
        mk.set_tokens(p2_ready, 1);
        mk.set_tokens(p2_db, 1);
    })?;

    // P2's message cycle.
    let og_p2_ext = m.add_output_gate("p2_ext_or_skip", move |mk| {
        if mk.tokens(p2_db) == 1 {
            mk.set_tokens(p2_ready, 0);
            mk.set_tokens(p2_ext, 1);
        }
    });
    let og_p1o_ckpt = m.add_output_gate("p1o_ckpt_or_skip", move |mk| {
        if mk.tokens(p2_db) == 1 && mk.tokens(p1o_db) == 0 && mk.tokens(p1o_ready) == 1 {
            mk.set_tokens(p1o_ready, 0);
            mk.set_tokens(p2_int, 1);
        }
    });
    m.add_activity(
        Activity::timed("P2Msg", lambda)
            .with_enabling(move |mk| mk.tokens(p2_ready) == 1)
            .with_case(Case::with_probability(p_ext).with_output_gate(og_p2_ext))
            .with_case(Case::with_probability(1.0 - p_ext).with_output_gate(og_p1o_ckpt)),
    )?;
    add_safeguard(&mut m, "P2AT", &spec.at, p2_ext, move |mk| {
        mk.set_tokens(p2_ready, 1);
        mk.set_tokens(p2_db, 0);
    })?;
    add_safeguard(&mut m, "P1o_CKPT", &spec.ckpt, p2_int, move |mk| {
        mk.set_tokens(p1o_ready, 1);
        mk.set_tokens(p1o_db, 1);
    })?;

    Ok(Gp {
        model: m,
        places: GpPlaces {
            p1n_ready,
            p1n_ext,
            p1n_int,
            p2_ready,
            p2_ext,
            p2_int,
            p1o_ready,
            p2_db,
            p1o_db,
        },
    })
}

/// The Table 2 reward structure for `1 − ρ1` on the generalized overhead
/// model (predicate unchanged: the phase expansion keeps the trigger token
/// in `P1nExt` for the whole AT duration).
pub fn one_minus_rho1_spec(places: &GpPlaces) -> RewardSpec {
    let p1n_ext = places.p1n_ext;
    RewardSpec::new().rate_when(move |mk: &Marking| mk.tokens(p1n_ext) == 1, 1.0)
}

/// The Table 2 reward structure for `1 − ρ2` on the generalized overhead
/// model.
pub fn one_minus_rho2_spec(places: &GpPlaces) -> RewardSpec {
    let p1n_int = places.p1n_int;
    let p2_ext = places.p2_ext;
    let p2_db = places.p2_db;
    RewardSpec::new().rate_when(
        move |mk: &Marking| {
            (mk.tokens(p1n_int) == 1 && mk.tokens(p2_db) == 0)
                || (mk.tokens(p2_ext) == 1 && mk.tokens(p2_db) == 1)
        },
        1.0,
    )
}

/// Solves the scenario's steady-state overhead measures `(ρ1, ρ2)` on the
/// generalized overhead model.
///
/// # Errors
///
/// Propagates model generation and steady-state solver failures.
pub fn solve_rho(spec: &ScenarioSpec) -> Result<(f64, f64)> {
    let gp = build_gp(spec)?;
    let analyzer = san::Analyzer::generate(&gp.model, &Default::default())?;
    let overhead1 = analyzer.steady_reward(&one_minus_rho1_spec(&gp.places))?;
    let overhead2 = analyzer.steady_reward(&one_minus_rho2_spec(&gp.places))?;
    Ok((1.0 - overhead1, 1.0 - overhead2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::gsu::{gop_measures, rmgp};
    use performability::GsuParams;
    use san::Analyzer;

    fn paper_spec() -> ScenarioSpec {
        let params = GsuParams::paper_baseline();
        ScenarioSpec {
            name: "paper".to_string(),
            at: Dist::Exp { rate: params.alpha },
            ckpt: Dist::Exp { rate: params.beta },
            params,
            escorts: 1,
            waves: None,
            coverage_decay: 0.0,
            aging: None,
            phi_grid: vec![0.0, 5000.0, 10_000.0],
            sim_replications: 100,
            sim_seed: 7,
        }
    }

    fn scaled_spec() -> ScenarioSpec {
        // The scaled-down regime of tests/analytic_vs_simulation.rs: faults
        // are frequent enough that generalization effects show up.
        let params = GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.02,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        };
        ScenarioSpec {
            name: "scaled".to_string(),
            at: Dist::Exp { rate: params.alpha },
            ckpt: Dist::Exp { rate: params.beta },
            params,
            escorts: 1,
            waves: None,
            coverage_decay: 0.0,
            aging: None,
            phi_grid: vec![0.0, 25.0, 50.0],
            sim_replications: 100,
            sim_seed: 7,
        }
    }

    #[test]
    fn paper_shaped_gd_reduces_to_rmgd() {
        let spec = paper_spec();
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let direct = performability::GsuAnalysis::new(spec.params).unwrap();
        for phi in [0.0, 2500.0, 7000.0] {
            let engine = gop_measures(&an, gd.places.clone(), phi).unwrap();
            let m = direct.measures(phi).unwrap();
            assert!((engine.p_a1 - m.p_a1_gop).abs() < 1e-12, "phi = {phi}");
            assert!((engine.i_h - m.i_h).abs() < 1e-12, "phi = {phi}");
            assert!((engine.i_hf - m.i_hf).abs() < 1e-12, "phi = {phi}");
            assert!((engine.i_tau_h - m.i_tau_h).abs() < 1e-9, "phi = {phi}");
            assert!(
                (engine.i_tau_h_exact - m.i_tau_h_exact).abs() < 1e-9,
                "phi = {phi}"
            );
        }
    }

    #[test]
    fn exponential_gp_reduces_to_rmgp() {
        let spec = paper_spec();
        let (r1, r2) = solve_rho(&spec).unwrap();
        let (e1, e2) = rmgp::solve_rho(&spec.params).unwrap();
        assert!((r1 - e1).abs() < 1e-9, "{r1} vs {e1}");
        assert!((r2 - e2).abs() < 1e-9, "{r2} vs {e2}");
    }

    #[test]
    fn np_reduces_to_rmnd() {
        let spec = paper_spec();
        let p = spec.params;
        let np = build_np(&spec, p.mu_new).unwrap();
        let an = Analyzer::generate(&np.model, &Default::default()).unwrap();
        let failure = np.places.failure;
        let surv = an
            .probability_at(p.theta, move |mk| mk.tokens(failure) == 0)
            .unwrap();
        let rmnd = performability::gsu::rmnd::build(&p, p.mu_new).unwrap();
        let ran = Analyzer::generate(&rmnd.model, &Default::default()).unwrap();
        let rfailure = rmnd.places.failure;
        let rsurv = ran
            .probability_at(p.theta, move |mk| mk.tokens(rfailure) == 0)
            .unwrap();
        assert!((surv - rsurv).abs() < 1e-12, "{surv} vs {rsurv}");
    }

    #[test]
    fn rho1_is_insensitive_to_at_distribution() {
        // Renewal-reward: 1−ρ1 = (p_ext·E[AT])/(1/λ + p_ext·E[AT]) depends
        // on the AT duration only through its mean, so an Erlang AT of the
        // same mean must give the same ρ1.
        let mut spec = paper_spec();
        let (exp1, _) = solve_rho(&spec).unwrap();
        spec.at = Dist::Erlang {
            k: 4,
            rate: 4.0 * spec.params.alpha,
        };
        let (erl1, erl2) = solve_rho(&spec).unwrap();
        assert!((erl1 - exp1).abs() < 1e-7, "{erl1} vs {exp1}");
        assert!((0.0..=1.0).contains(&erl2));
    }

    #[test]
    fn hyper_and_det_safeguards_solve() {
        let mut spec = paper_spec();
        spec.at = Dist::Hyper {
            branches: vec![(0.3, 2000.0), (0.7, 12_000.0)],
        };
        spec.ckpt = Dist::Det {
            mean: 1.0 / 6000.0,
            stages: 6,
        };
        let (r1, r2) = solve_rho(&spec).unwrap();
        assert!((0.0..=1.0).contains(&r1));
        assert!((0.0..=1.0).contains(&r2));
        // Same AT mean as the baseline's exponential: ρ1 is mean-driven.
        let at_mean: f64 = 0.3 / 2000.0 + 0.7 / 12_000.0;
        let p = spec.params;
        let want = 1.0 - (p.p_ext * at_mean) / (1.0 / p.lambda + p.p_ext * at_mean);
        assert!((r1 - want).abs() < 1e-7, "{r1} vs {want}");
    }

    #[test]
    fn more_escorts_lower_survival() {
        let mut spec = scaled_spec();
        let mut last = 1.0;
        for n in [1, 2, 3] {
            spec.escorts = n;
            let gd = build_gd(&spec).unwrap();
            let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
            let phi = spec.params.theta;
            let m = gop_measures(&an, gd.places.clone(), phi).unwrap();
            assert!(
                m.p_a1 < last + 1e-12,
                "escorts = {n}: {} should not exceed {last}",
                m.p_a1
            );
            last = m.p_a1;
        }
    }

    #[test]
    fn coverage_decay_reduces_detection() {
        let mut spec = scaled_spec();
        // Raise µ_old so that multi-process contamination has real mass.
        spec.params.mu_old = 0.01;
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let base = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        spec.coverage_decay = 0.5;
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let decayed = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        assert!(
            decayed.i_h < base.i_h,
            "decay should reduce detection: {} vs {}",
            decayed.i_h,
            base.i_h
        );
    }

    #[test]
    fn upgrade_waves_improve_survival() {
        let mut spec = scaled_spec();
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let base = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        spec.waves = Some(crate::ast::WaveSpec {
            count: 3,
            rate: 0.5,
            factor: 0.1,
        });
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let waved = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        assert!(
            waved.p_a1 > base.p_a1,
            "waves should improve survival: {} vs {}",
            waved.p_a1,
            base.p_a1
        );
    }

    #[test]
    fn aging_hurts_and_rejuvenation_helps() {
        let mut spec = scaled_spec();
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let base = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        spec.aging = Some(crate::ast::AgingSpec {
            rate: 0.5,
            factor: 200.0,
            rejuvenation: None,
        });
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let aged = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        assert!(aged.p_a1 < base.p_a1, "{} vs {}", aged.p_a1, base.p_a1);
        spec.aging = Some(crate::ast::AgingSpec {
            rate: 0.5,
            factor: 200.0,
            rejuvenation: Some(5.0),
        });
        let gd = build_gd(&spec).unwrap();
        let an = Analyzer::generate(&gd.model, &Default::default()).unwrap();
        let rejuv = gop_measures(&an, gd.places.clone(), 50.0).unwrap();
        assert!(
            rejuv.p_a1 > aged.p_a1,
            "rejuvenation should help: {} vs {}",
            rejuv.p_a1,
            aged.p_a1
        );
    }
}
