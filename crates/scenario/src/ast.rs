//! The scenario abstract syntax: parameterized GSU families.
//!
//! A [`ScenarioSpec`] is the parsed form of a `.gsu` file. It embeds the
//! paper's basic parameters ([`GsuParams`]) and the generalizations the
//! catalog exercises: multiple escorted processes, staged upgrade waves,
//! marking-dependent (degrading) acceptance-test coverage, aging /
//! rejuvenation of escort processes, and non-exponential safeguard
//! durations expanded through [`markov::phase_type::PhaseType`].

use performability::GsuParams;

/// Upper bound on escorted processes — keeps the generalized state spaces
/// comfortably small for exact transient solution.
pub const MAX_ESCORTS: usize = 4;
/// Upper bound on upgrade waves.
pub const MAX_WAVES: usize = 8;
/// Upper bound on Erlang / deterministic-approximation stages.
pub const MAX_STAGES: usize = 16;
/// Upper bound on hyperexponential branches.
pub const MAX_BRANCHES: usize = 4;

/// A duration distribution for a safeguard activity, compiled to a
/// phase-type representation for the overhead model.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Exponential with the given rate (the paper's assumption).
    Exp {
        /// Completion rate (1/hour).
        rate: f64,
    },
    /// Erlang with `k` stages of the given per-stage rate (mean `k/rate`).
    Erlang {
        /// Number of stages.
        k: usize,
        /// Per-stage rate.
        rate: f64,
    },
    /// Hyperexponential mixture of `(weight, rate)` branches.
    Hyper {
        /// `(weight, rate)` pairs; weights must sum to 1.
        branches: Vec<(f64, f64)>,
    },
    /// Deterministic duration approximated by an Erlang with the given
    /// number of stages (mean preserved, variance `mean²/stages`).
    Det {
        /// The deterministic duration being approximated.
        mean: f64,
        /// Erlang stages of the approximation.
        stages: usize,
    },
}

impl Dist {
    /// The mean duration.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Exp { rate } => 1.0 / rate,
            Dist::Erlang { k, rate } => *k as f64 / rate,
            Dist::Hyper { branches } => branches.iter().map(|(w, r)| w / r).sum(),
            Dist::Det { mean, .. } => *mean,
        }
    }

    /// The equivalent completion rate `1/mean` (exact for exponentials).
    pub fn mean_rate(&self) -> f64 {
        match self {
            Dist::Exp { rate } => *rate,
            other => 1.0 / other.mean(),
        }
    }

    /// `true` for a plain exponential (no phase expansion needed).
    pub fn is_exponential(&self) -> bool {
        matches!(self, Dist::Exp { .. })
    }

    /// Compiles the distribution to its phase-type representation via the
    /// [`markov::phase_type::PhaseType`] constructors.
    ///
    /// # Errors
    ///
    /// Propagates constructor validation failures (non-positive rates,
    /// weights not summing to one, …).
    pub fn to_phase_type(&self) -> Result<markov::phase_type::PhaseType, markov::MarkovError> {
        match self {
            Dist::Exp { rate } => markov::phase_type::PhaseType::exponential(*rate),
            Dist::Erlang { k, rate } => markov::phase_type::PhaseType::erlang(*k, *rate),
            Dist::Hyper { branches } => markov::phase_type::PhaseType::hyperexponential(branches),
            Dist::Det { mean, stages } => {
                markov::phase_type::PhaseType::deterministic_approx(*mean, *stages)
            }
        }
    }

    fn serialize(&self, out: &mut String) {
        match self {
            Dist::Exp { rate } => {
                out.push_str("exp ");
                out.push_str(&rate.to_string());
            }
            Dist::Erlang { k, rate } => {
                out.push_str(&format!("erlang {k} {rate}"));
            }
            Dist::Hyper { branches } => {
                out.push_str("hyper");
                for (w, r) in branches {
                    out.push_str(&format!(" {w} {r}"));
                }
            }
            Dist::Det { mean, stages } => {
                out.push_str(&format!("det {mean} {stages}"));
            }
        }
    }
}

/// Staged upgrade waves: the fault-manifestation rate of the upgraded
/// component drops by `factor` after each completed wave (dynamic
/// reconfiguration / reliability growth during the guarded operation).
#[derive(Debug, Clone, PartialEq)]
pub struct WaveSpec {
    /// Total number of reliability levels (`count − 1` wave completions).
    pub count: usize,
    /// Rate at which each wave completes (exponential).
    pub rate: f64,
    /// Multiplier applied to µ_new per completed wave, in `(0, 1]`.
    pub factor: f64,
}

impl WaveSpec {
    /// The effective fault-manifestation rate of the upgraded component
    /// after `completed` waves, floored at µ_old.
    pub fn mu_at(&self, completed: u32, mu_new: f64, mu_old: f64) -> f64 {
        (mu_new * self.factor.powi(completed as i32)).max(mu_old)
    }
}

/// Escort-process aging (container-aging style): an aged escort manifests
/// faults `factor` times faster; optional rejuvenation clears the aged
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct AgingSpec {
    /// Rate of becoming aged.
    pub rate: f64,
    /// Fault-rate multiplier while aged, ≥ 1.
    pub factor: f64,
    /// Optional rejuvenation rate (clears the aged state).
    pub rejuvenation: Option<f64>,
}

/// One fully parsed scenario: the paper's parameters plus the catalog's
/// generalizations and the evaluation/simulation settings.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (the catalog key; `[A-Za-z0-9._-]+`).
    pub name: String,
    /// The basic GSU parameters; `alpha`/`beta` are derived from the mean
    /// of [`ScenarioSpec::at`] / [`ScenarioSpec::ckpt`].
    pub params: GsuParams,
    /// Acceptance-test duration distribution.
    pub at: Dist,
    /// Checkpoint-establishment duration distribution.
    pub ckpt: Dist,
    /// Number of escorted processes (the paper's model has one: `P2`).
    pub escorts: usize,
    /// Staged upgrade waves, when more than one reliability level exists.
    pub waves: Option<WaveSpec>,
    /// Coverage lost per additional contaminated process beyond the sender
    /// (marking-dependent coverage), in `[0, 1]`.
    pub coverage_decay: f64,
    /// Escort aging/rejuvenation, when modelled.
    pub aging: Option<AgingSpec>,
    /// The φ grid of the golden curve (ascending, within `[0, θ]`).
    pub phi_grid: Vec<f64>,
    /// Monte-Carlo replications for cross-validation.
    pub sim_replications: usize,
    /// Base seed for cross-validation runs.
    pub sim_seed: u64,
}

impl ScenarioSpec {
    /// `true` when the scenario is exactly the paper's model shape (one
    /// escort, one wave, constant coverage, exponential safeguards, no
    /// aging) — such scenarios can be cross-validated against the dedicated
    /// MDCD simulator in addition to SAN-level simulation.
    pub fn is_paper_shaped(&self) -> bool {
        self.escorts == 1
            && self.waves.is_none()
            && self.coverage_decay == 0.0
            && self.aging.is_none()
            && self.at.is_exponential()
            && self.ckpt.is_exponential()
    }

    /// Expected number of discrete events per exact-simulation trajectory —
    /// used to pick the cross-validation backend.
    pub fn events_per_trajectory(&self) -> f64 {
        let horizon = self.phi_grid.last().copied().unwrap_or(self.params.theta);
        self.params.lambda * horizon * (self.escorts as f64 + 1.0)
    }

    /// Serializes the scenario to canonical DSL text; parsing the result
    /// yields an identical spec (the round-trip property tests assert
    /// this).
    pub fn to_dsl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("scenario \"{}\"\n", self.name));
        let p = &self.params;
        out.push_str(&format!("theta {}\n", p.theta));
        out.push_str(&format!("lambda {}\n", p.lambda));
        out.push_str(&format!("mu_new {}\n", p.mu_new));
        out.push_str(&format!("mu_old {}\n", p.mu_old));
        out.push_str(&format!("coverage {}\n", p.coverage));
        out.push_str(&format!("p_ext {}\n", p.p_ext));
        out.push_str("at ");
        self.at.serialize(&mut out);
        out.push('\n');
        out.push_str("ckpt ");
        self.ckpt.serialize(&mut out);
        out.push('\n');
        if self.escorts != 1 {
            out.push_str(&format!("escorts {}\n", self.escorts));
        }
        if let Some(w) = &self.waves {
            out.push_str(&format!("waves {} {} {}\n", w.count, w.rate, w.factor));
        }
        if self.coverage_decay != 0.0 {
            out.push_str(&format!("coverage_decay {}\n", self.coverage_decay));
        }
        if let Some(a) = &self.aging {
            match a.rejuvenation {
                Some(r) => {
                    out.push_str(&format!("aging {} {} rejuvenate {}\n", a.rate, a.factor, r))
                }
                None => out.push_str(&format!("aging {} {}\n", a.rate, a.factor)),
            }
        }
        out.push_str("phi_grid");
        for phi in &self.phi_grid {
            out.push_str(&format!(" {phi}"));
        }
        out.push('\n');
        out.push_str(&format!("sim_reps {}\n", self.sim_replications));
        out.push_str(&format!("sim_seed {}\n", self.sim_seed));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_means() {
        assert_eq!(Dist::Exp { rate: 6000.0 }.mean_rate(), 6000.0);
        assert_eq!(Dist::Erlang { k: 3, rate: 6.0 }.mean(), 0.5);
        let h = Dist::Hyper {
            branches: vec![(0.5, 1.0), (0.5, 2.0)],
        };
        assert!((h.mean() - 0.75).abs() < 1e-12);
        assert_eq!(
            Dist::Det {
                mean: 0.25,
                stages: 8
            }
            .mean(),
            0.25
        );
    }

    #[test]
    fn wave_rate_floors_at_mu_old() {
        let w = WaveSpec {
            count: 4,
            rate: 0.1,
            factor: 0.1,
        };
        assert_eq!(w.mu_at(0, 1e-2, 1e-8), 1e-2);
        assert!((w.mu_at(2, 1e-2, 1e-8) - 1e-4).abs() < 1e-18);
        assert_eq!(w.mu_at(3, 1e-4, 1e-6), 1e-6);
    }
}
