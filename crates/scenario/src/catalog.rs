//! Catalog loading and golden-curve persistence.
//!
//! A catalog is a directory of `.gsu` files; each scenario's analytic Y(φ)
//! curve is committed as a golden JSON file (`results/golden/<name>.json`,
//! schema `gsu-golden-v1`). Values are serialized through `f64`'s `Display`
//! — which round-trips exactly through `str::parse` — so goldens compare at
//! solver precision, and the deterministic parallel sweep keeps them
//! thread-count invariant.

use std::path::Path;

use crate::ast::ScenarioSpec;
use crate::ScenarioError;

/// A golden Y(φ) curve for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCurve {
    /// The scenario name.
    pub scenario: String,
    /// `(φ, Y(φ))` points along the scenario's grid.
    pub points: Vec<(f64, f64)>,
}

impl GoldenCurve {
    /// Serializes the curve to its canonical JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"gsu-golden-v1\",\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        out.push_str("  \"points\": [\n");
        for (i, (phi, y)) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!("    {{\"phi\": {phi}, \"y\": {y}}}{sep}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the canonical golden JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformation. The parser is
    /// strict about the schema but tolerant of whitespace.
    pub fn from_json(text: &str) -> Result<GoldenCurve, String> {
        let mut p = JsonCursor::new(text);
        p.eat('{')?;
        let mut schema = None;
        let mut scenario = None;
        let mut points = None;
        loop {
            let key = p.string()?;
            p.eat(':')?;
            match key.as_str() {
                "schema" => schema = Some(p.string()?),
                "scenario" => scenario = Some(p.string()?),
                "points" => {
                    let mut pts = Vec::new();
                    p.eat('[')?;
                    if !p.peek_is(']') {
                        loop {
                            p.eat('{')?;
                            let mut phi = None;
                            let mut y = None;
                            loop {
                                let k = p.string()?;
                                p.eat(':')?;
                                let v = p.number()?;
                                match k.as_str() {
                                    "phi" => phi = Some(v),
                                    "y" => y = Some(v),
                                    other => return Err(format!("unknown point key `{other}`")),
                                }
                                if !p.comma_or(&'}')? {
                                    break;
                                }
                            }
                            match (phi, y) {
                                (Some(phi), Some(y)) => pts.push((phi, y)),
                                _ => return Err("point missing phi or y".to_string()),
                            }
                            if !p.comma_or(&']')? {
                                break;
                            }
                        }
                    } else {
                        p.eat(']')?;
                    }
                    points = Some(pts);
                }
                other => return Err(format!("unknown key `{other}`")),
            }
            if !p.comma_or(&'}')? {
                break;
            }
        }
        p.end()?;
        match schema.as_deref() {
            Some("gsu-golden-v1") => {}
            Some(other) => return Err(format!("unsupported schema `{other}`")),
            None => return Err("missing schema".to_string()),
        }
        Ok(GoldenCurve {
            scenario: scenario.ok_or("missing scenario")?,
            points: points.ok_or("missing points")?,
        })
    }
}

/// A minimal strict cursor over the golden JSON subset.
struct JsonCursor<'a> {
    rest: &'a str,
}

impl<'a> JsonCursor<'a> {
    fn new(text: &'a str) -> Self {
        JsonCursor { rest: text }
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, ch: char) -> Result<(), String> {
        self.skip_ws();
        match self.rest.strip_prefix(ch) {
            Some(rest) => {
                self.rest = rest;
                Ok(())
            }
            None => Err(format!(
                "expected `{ch}` at `{}`",
                &self.rest[..self.rest.len().min(20)]
            )),
        }
    }

    fn peek_is(&mut self, ch: char) -> bool {
        self.skip_ws();
        self.rest.starts_with(ch)
    }

    /// Consumes either a comma (continuing a sequence) or the closing
    /// delimiter; returns `true` when the sequence continues.
    fn comma_or(&mut self, close: &char) -> Result<bool, String> {
        self.skip_ws();
        if let Some(rest) = self.rest.strip_prefix(',') {
            self.rest = rest;
            Ok(true)
        } else if let Some(rest) = self.rest.strip_prefix(*close) {
            self.rest = rest;
            Ok(false)
        } else {
            Err(format!(
                "expected `,` or `{close}` at `{}`",
                &self.rest[..self.rest.len().min(20)]
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        match self.rest.find('"') {
            Some(end) => {
                let s = self.rest[..end].to_string();
                self.rest = &self.rest[end + 1..];
                Ok(s)
            }
            None => Err("unterminated string".to_string()),
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
            .unwrap_or(self.rest.len());
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        tok.parse::<f64>()
            .map_err(|_| format!("bad number `{tok}`"))
    }

    fn end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(format!("trailing content `{}`", self.rest))
        }
    }
}

/// Loads every `.gsu` scenario under `dir`, sorted by file name.
///
/// Each scenario's name must match its file stem, so the catalog key is
/// unambiguous across the bench, serve, and lint surfaces.
///
/// # Errors
///
/// Returns the first I/O failure, parse failure, or name mismatch in file
/// order.
pub fn load_dir(dir: &Path) -> Result<Vec<ScenarioSpec>, ScenarioError> {
    let io_err = |e: std::io::Error| ScenarioError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    };
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(io_err)?
        .collect::<Result<Vec<_>, _>>()
        .map_err(io_err)?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|path| path.extension().is_some_and(|e| e == "gsu"))
        .collect();
    files.sort();

    let mut specs = Vec::with_capacity(files.len());
    for path in files {
        let file = path.display().to_string();
        let text = std::fs::read_to_string(&path).map_err(|e| ScenarioError::Io {
            path: file.clone(),
            message: e.to_string(),
        })?;
        let spec = crate::parse(&text).map_err(|error| ScenarioError::Parse {
            file: file.clone(),
            error,
        })?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
        if spec.name != stem {
            return Err(ScenarioError::Invalid {
                file,
                message: format!(
                    "scenario name `{}` does not match file stem `{stem}`",
                    spec.name
                ),
            });
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Reads a golden curve from `path`.
///
/// # Errors
///
/// Returns I/O failures and JSON malformations.
pub fn read_golden(path: &Path) -> Result<GoldenCurve, ScenarioError> {
    let file = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
        path: file.clone(),
        message: e.to_string(),
    })?;
    GoldenCurve::from_json(&text).map_err(|message| ScenarioError::Invalid { file, message })
}

/// Writes a golden curve to `path` in canonical form.
///
/// # Errors
///
/// Returns I/O failures.
pub fn write_golden(path: &Path, curve: &GoldenCurve) -> Result<(), ScenarioError> {
    std::fs::write(path, curve.to_json()).map_err(|e| ScenarioError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_json_round_trips() {
        let curve = GoldenCurve {
            scenario: "x".to_string(),
            points: vec![(0.0, 1.0), (2500.5, 1.203_450_678_9), (1e4, 0.75)],
        };
        let back = GoldenCurve::from_json(&curve.to_json()).unwrap();
        assert_eq!(curve, back);
    }

    #[test]
    fn golden_json_rejects_malformations() {
        assert!(GoldenCurve::from_json("{}").is_err());
        assert!(GoldenCurve::from_json("not json").is_err());
        let wrong_schema = r#"{"schema": "v999", "scenario": "x", "points": []}"#;
        assert!(GoldenCurve::from_json(wrong_schema).is_err());
        let trailing = r#"{"schema": "gsu-golden-v1", "scenario": "x", "points": []} extra"#;
        assert!(GoldenCurve::from_json(trailing).is_err());
    }

    #[test]
    fn golden_json_accepts_empty_points() {
        let empty = r#"{"schema": "gsu-golden-v1", "scenario": "x", "points": []}"#;
        let curve = GoldenCurve::from_json(empty).unwrap();
        assert!(curve.points.is_empty());
    }
}
