//! Hand-rolled parser for the `.gsu` scenario DSL.
//!
//! The grammar is line-oriented (see `SCENARIOS.md` for the full
//! reference): `#` starts a comment, the first significant line must be
//! `scenario "<name>"`, and every other line is `key value…`. Every parse
//! failure carries the 1-based line and column of the offending token and
//! a stable error class, which the negative-case tests assert exactly.

use std::collections::HashMap;

use performability::GsuParams;

use crate::ast::{
    AgingSpec, Dist, ScenarioSpec, WaveSpec, MAX_BRANCHES, MAX_ESCORTS, MAX_STAGES, MAX_WAVES,
};

/// Stable classification of scenario parse failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The first significant line is not a `scenario "<name>"` header.
    MissingHeader,
    /// The scenario name is empty or contains invalid characters.
    BadName,
    /// A line starts with a key the grammar does not know.
    UnknownKey,
    /// The same key appears twice.
    DuplicateKey,
    /// A token that should be a number is not one.
    BadNumber,
    /// A line has too few or too many tokens for its key.
    WrongArity,
    /// A duration distribution name is not `exp`/`erlang`/`hyper`/`det`.
    UnknownDistribution,
    /// A value is outside its valid domain.
    InvalidValue,
    /// A required key never appeared.
    MissingKey,
}

/// A scenario parse failure with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Stable error class.
    pub kind: ParseErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A token with its 1-based source position.
#[derive(Debug, Clone, Copy)]
struct Tok<'a> {
    text: &'a str,
    line: usize,
    col: usize,
}

impl<'a> Tok<'a> {
    fn err(&self, kind: ParseErrorKind, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            kind,
            message: message.into(),
        }
    }

    fn number(&self) -> Result<f64, ParseError> {
        match self.text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            _ => Err(self.err(
                ParseErrorKind::BadNumber,
                format!("`{}` is not a finite number", self.text),
            )),
        }
    }

    fn integer(&self) -> Result<u64, ParseError> {
        self.text.parse::<u64>().map_err(|_| {
            self.err(
                ParseErrorKind::BadNumber,
                format!("`{}` is not a non-negative integer", self.text),
            )
        })
    }
}

/// Splits one physical line (already stripped of comments) into positioned
/// tokens.
fn tokenize(line: &str, line_no: usize) -> Vec<Tok<'_>> {
    let mut toks = Vec::new();
    let mut start: Option<usize> = None;
    for (i, ch) in line.char_indices() {
        if ch.is_whitespace() {
            if let Some(s) = start.take() {
                toks.push(Tok {
                    text: &line[s..i],
                    line: line_no,
                    col: s + 1,
                });
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        toks.push(Tok {
            text: &line[s..],
            line: line_no,
            col: s + 1,
        });
    }
    toks
}

fn check_arity(key: &Tok<'_>, args: &[Tok<'_>], want: usize) -> Result<(), ParseError> {
    if args.len() != want {
        return Err(key.err(
            ParseErrorKind::WrongArity,
            format!(
                "key `{}` takes {} value{}, got {}",
                key.text,
                want,
                if want == 1 { "" } else { "s" },
                args.len()
            ),
        ));
    }
    Ok(())
}

fn positive(tok: &Tok<'_>, what: &str) -> Result<f64, ParseError> {
    let v = tok.number()?;
    if v <= 0.0 {
        return Err(tok.err(
            ParseErrorKind::InvalidValue,
            format!("{what} must be > 0, got {v}"),
        ));
    }
    Ok(v)
}

fn unit_interval(tok: &Tok<'_>, what: &str) -> Result<f64, ParseError> {
    let v = tok.number()?;
    if !(0.0..=1.0).contains(&v) {
        return Err(tok.err(
            ParseErrorKind::InvalidValue,
            format!("{what} must be within [0, 1], got {v}"),
        ));
    }
    Ok(v)
}

fn parse_dist(key: &Tok<'_>, args: &[Tok<'_>]) -> Result<Dist, ParseError> {
    let Some(head) = args.first() else {
        return Err(key.err(
            ParseErrorKind::WrongArity,
            format!("key `{}` needs a distribution", key.text),
        ));
    };
    let rest = &args[1..];
    match head.text {
        "exp" => {
            check_arity(head, rest, 1)?;
            Ok(Dist::Exp {
                rate: positive(&rest[0], "rate")?,
            })
        }
        "erlang" => {
            check_arity(head, rest, 2)?;
            let k = rest[0].integer()? as usize;
            if k == 0 || k > MAX_STAGES {
                return Err(rest[0].err(
                    ParseErrorKind::InvalidValue,
                    format!("erlang stages must be within [1, {MAX_STAGES}], got {k}"),
                ));
            }
            Ok(Dist::Erlang {
                k,
                rate: positive(&rest[1], "rate")?,
            })
        }
        "hyper" => {
            if rest.is_empty() || !rest.len().is_multiple_of(2) {
                return Err(head.err(
                    ParseErrorKind::WrongArity,
                    "hyper takes weight/rate pairs".to_string(),
                ));
            }
            if rest.len() / 2 > MAX_BRANCHES {
                return Err(head.err(
                    ParseErrorKind::InvalidValue,
                    format!("hyper supports at most {MAX_BRANCHES} branches"),
                ));
            }
            let mut branches = Vec::with_capacity(rest.len() / 2);
            for pair in rest.chunks(2) {
                branches.push((
                    unit_interval(&pair[0], "branch weight")?,
                    positive(&pair[1], "branch rate")?,
                ));
            }
            let total: f64 = branches.iter().map(|(w, _)| w).sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(head.err(
                    ParseErrorKind::InvalidValue,
                    format!("hyper branch weights must sum to 1, got {total}"),
                ));
            }
            Ok(Dist::Hyper { branches })
        }
        "det" => {
            check_arity(head, rest, 2)?;
            let mean = positive(&rest[0], "mean")?;
            let stages = rest[1].integer()? as usize;
            if stages == 0 || stages > MAX_STAGES {
                return Err(rest[1].err(
                    ParseErrorKind::InvalidValue,
                    format!("det stages must be within [1, {MAX_STAGES}], got {stages}"),
                ));
            }
            Ok(Dist::Det { mean, stages })
        }
        other => Err(head.err(
            ParseErrorKind::UnknownDistribution,
            format!("unknown distribution `{other}` (expected exp, erlang, hyper, or det)"),
        )),
    }
}

fn parse_header(toks: &[Tok<'_>]) -> Result<String, ParseError> {
    let head = toks[0];
    if head.text != "scenario" {
        return Err(head.err(
            ParseErrorKind::MissingHeader,
            "the first line must be `scenario \"<name>\"`".to_string(),
        ));
    }
    if toks.len() != 2 {
        return Err(head.err(
            ParseErrorKind::WrongArity,
            format!("key `scenario` takes 1 value, got {}", toks.len() - 1),
        ));
    }
    let name_tok = toks[1];
    let raw = name_tok.text;
    let Some(name) = raw.strip_prefix('"').and_then(|s| s.strip_suffix('"')) else {
        return Err(name_tok.err(
            ParseErrorKind::BadName,
            "scenario name must be double-quoted".to_string(),
        ));
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(name_tok.err(
            ParseErrorKind::BadName,
            format!("scenario name `{name}` must be non-empty [A-Za-z0-9._-]"),
        ));
    }
    Ok(name.to_string())
}

/// Parses one `.gsu` scenario document.
///
/// # Errors
///
/// Returns the first [`ParseError`] in document order, positioned at the
/// offending token.
pub fn parse(text: &str) -> Result<ScenarioSpec, ParseError> {
    let mut name: Option<String> = None;
    let mut header = Tok {
        text: "",
        line: 1,
        col: 1,
    };
    // Parsed values keyed by field, with the line/col of their key for
    // cross-field validation at the end.
    let mut numbers: HashMap<&'static str, f64> = HashMap::new();
    let mut at: Option<Dist> = None;
    let mut ckpt: Option<Dist> = None;
    let mut waves: Option<WaveSpec> = None;
    let mut aging: Option<AgingSpec> = None;
    let mut phi_grid: Option<Vec<f64>> = None;
    let mut phi_points: Option<usize> = None;
    let mut sim_seed: Option<u64> = None;
    let mut seen: HashMap<String, (usize, usize)> = HashMap::new();
    let mut grid_key = header;

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw_line.find('#') {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let toks = tokenize(line, line_no);
        let Some(&key) = toks.first() else { continue };

        if name.is_none() {
            name = Some(parse_header(&toks)?);
            header = key;
            continue;
        }
        if let Some(&(l, c)) = seen.get(key.text) {
            return Err(key.err(
                ParseErrorKind::DuplicateKey,
                format!("key `{}` already given at line {l}, column {c}", key.text),
            ));
        }
        seen.insert(key.text.to_string(), (key.line, key.col));
        let args = &toks[1..];

        match key.text {
            "scenario" => {
                return Err(key.err(
                    ParseErrorKind::DuplicateKey,
                    "only one `scenario` header is allowed".to_string(),
                ))
            }
            "theta" | "lambda" | "mu_new" => {
                check_arity(&key, args, 1)?;
                numbers.insert(leak_key(key.text), positive(&args[0], key.text)?);
            }
            "mu_old" => {
                check_arity(&key, args, 1)?;
                let v = args[0].number()?;
                if v < 0.0 {
                    return Err(args[0].err(
                        ParseErrorKind::InvalidValue,
                        format!("mu_old must be >= 0, got {v}"),
                    ));
                }
                numbers.insert("mu_old", v);
            }
            "coverage" | "p_ext" | "coverage_decay" => {
                check_arity(&key, args, 1)?;
                numbers.insert(leak_key(key.text), unit_interval(&args[0], key.text)?);
            }
            "at" => at = Some(parse_dist(&key, args)?),
            "ckpt" => ckpt = Some(parse_dist(&key, args)?),
            "escorts" => {
                check_arity(&key, args, 1)?;
                let n = args[0].integer()? as usize;
                if n == 0 || n > MAX_ESCORTS {
                    return Err(args[0].err(
                        ParseErrorKind::InvalidValue,
                        format!("escorts must be within [1, {MAX_ESCORTS}], got {n}"),
                    ));
                }
                numbers.insert("escorts", n as f64);
            }
            "waves" => {
                check_arity(&key, args, 3)?;
                let count = args[0].integer()? as usize;
                if !(2..=MAX_WAVES).contains(&count) {
                    return Err(args[0].err(
                        ParseErrorKind::InvalidValue,
                        format!("waves must be within [2, {MAX_WAVES}], got {count}"),
                    ));
                }
                let rate = positive(&args[1], "wave rate")?;
                let factor = args[2].number()?;
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(args[2].err(
                        ParseErrorKind::InvalidValue,
                        format!("wave factor must be within (0, 1], got {factor}"),
                    ));
                }
                waves = Some(WaveSpec {
                    count,
                    rate,
                    factor,
                });
            }
            "aging" => {
                if args.len() != 2 && args.len() != 4 {
                    return Err(key.err(
                        ParseErrorKind::WrongArity,
                        format!(
                            "key `aging` takes `RATE FACTOR [rejuvenate RATE]`, got {} values",
                            args.len()
                        ),
                    ));
                }
                let rate = positive(&args[0], "aging rate")?;
                let factor = args[1].number()?;
                if factor < 1.0 {
                    return Err(args[1].err(
                        ParseErrorKind::InvalidValue,
                        format!("aging factor must be >= 1, got {factor}"),
                    ));
                }
                let rejuvenation = if args.len() == 4 {
                    if args[2].text != "rejuvenate" {
                        return Err(args[2].err(
                            ParseErrorKind::UnknownKey,
                            format!("expected `rejuvenate`, got `{}`", args[2].text),
                        ));
                    }
                    Some(positive(&args[3], "rejuvenation rate")?)
                } else {
                    None
                };
                aging = Some(AgingSpec {
                    rate,
                    factor,
                    rejuvenation,
                });
            }
            "phi_grid" => {
                if args.len() < 2 {
                    return Err(key.err(
                        ParseErrorKind::WrongArity,
                        format!("phi_grid needs at least 2 points, got {}", args.len()),
                    ));
                }
                let mut grid = Vec::with_capacity(args.len());
                for tok in args {
                    let v = tok.number()?;
                    if v < 0.0 {
                        return Err(tok.err(
                            ParseErrorKind::InvalidValue,
                            format!("phi must be >= 0, got {v}"),
                        ));
                    }
                    if let Some(&last) = grid.last() {
                        if v < last {
                            return Err(tok.err(
                                ParseErrorKind::InvalidValue,
                                format!("phi_grid must be ascending, {v} after {last}"),
                            ));
                        }
                    }
                    grid.push(v);
                }
                phi_grid = Some(grid);
                grid_key = key;
            }
            "phi_points" => {
                check_arity(&key, args, 1)?;
                let n = args[0].integer()? as usize;
                if !(2..=1024).contains(&n) {
                    return Err(args[0].err(
                        ParseErrorKind::InvalidValue,
                        format!("phi_points must be within [2, 1024], got {n}"),
                    ));
                }
                phi_points = Some(n);
                grid_key = key;
            }
            "sim_reps" => {
                check_arity(&key, args, 1)?;
                let n = args[0].integer()?;
                if n == 0 {
                    return Err(args[0].err(
                        ParseErrorKind::InvalidValue,
                        "sim_reps must be > 0".to_string(),
                    ));
                }
                numbers.insert("sim_reps", n as f64);
            }
            "sim_seed" => {
                check_arity(&key, args, 1)?;
                // Kept out of the f64 table: seeds above 2^53 must survive.
                sim_seed = Some(args[0].integer()?);
            }
            other => {
                return Err(key.err(ParseErrorKind::UnknownKey, format!("unknown key `{other}`")))
            }
        }
    }

    let Some(name) = name else {
        return Err(ParseError {
            line: 1,
            col: 1,
            kind: ParseErrorKind::MissingHeader,
            message: "empty document: expected `scenario \"<name>\"`".to_string(),
        });
    };

    let missing = |key: &str| ParseError {
        line: header.line,
        col: header.col,
        kind: ParseErrorKind::MissingKey,
        message: format!("scenario `{name}` is missing required key `{key}`"),
    };
    let need = |key: &'static str| numbers.get(key).copied().ok_or_else(|| missing(key));
    let theta = need("theta")?;
    let lambda = need("lambda")?;
    let mu_new = need("mu_new")?;
    let mu_old = need("mu_old")?;
    let coverage = need("coverage")?;
    let p_ext = need("p_ext")?;
    let at = at.ok_or_else(|| missing("at"))?;
    let ckpt = ckpt.ok_or_else(|| missing("ckpt"))?;

    let phi_grid = match (phi_grid, phi_points) {
        (Some(_), Some(_)) => {
            return Err(ParseError {
                line: grid_key.line,
                col: grid_key.col,
                kind: ParseErrorKind::DuplicateKey,
                message: "give either phi_grid or phi_points, not both".to_string(),
            })
        }
        (Some(grid), None) => {
            if let Some(&last) = grid.last() {
                if last > theta {
                    return Err(ParseError {
                        line: grid_key.line,
                        col: grid_key.col,
                        kind: ParseErrorKind::InvalidValue,
                        message: format!("phi_grid reaches {last}, beyond theta = {theta}"),
                    });
                }
            }
            grid
        }
        (None, Some(n)) => (0..n).map(|i| theta * i as f64 / (n - 1) as f64).collect(),
        (None, None) => return Err(missing("phi_grid")),
    };

    let params = GsuParams {
        theta,
        lambda,
        mu_new,
        mu_old,
        coverage,
        p_ext,
        alpha: at.mean_rate(),
        beta: ckpt.mean_rate(),
    };
    if let Err(e) = params.validate() {
        return Err(ParseError {
            line: header.line,
            col: header.col,
            kind: ParseErrorKind::InvalidValue,
            message: format!("invalid parameter set: {e}"),
        });
    }

    Ok(ScenarioSpec {
        name,
        params,
        at,
        ckpt,
        escorts: numbers.get("escorts").map_or(1, |&n| n as usize),
        waves,
        coverage_decay: numbers.get("coverage_decay").copied().unwrap_or(0.0),
        aging,
        phi_grid,
        sim_replications: numbers.get("sim_reps").map_or(1500, |&n| n as usize),
        sim_seed: sim_seed.unwrap_or(7),
    })
}

/// Maps a dynamic key string to the matching `&'static str` literal so the
/// numbers table can use static keys without allocation.
fn leak_key(key: &str) -> &'static str {
    match key {
        "theta" => "theta",
        "lambda" => "lambda",
        "mu_new" => "mu_new",
        "coverage" => "coverage",
        "p_ext" => "p_ext",
        "coverage_decay" => "coverage_decay",
        _ => unreachable!("leak_key called for unregistered key"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"scenario "paper-baseline"
theta 10000
lambda 1200
mu_new 1e-4
mu_old 1e-8
coverage 0.95
p_ext 0.1
at exp 6000
ckpt exp 6000
phi_grid 0 2500 5000 7500 10000
"#;

    #[test]
    fn minimal_document_parses() {
        let spec = parse(MINIMAL).unwrap();
        assert_eq!(spec.name, "paper-baseline");
        assert_eq!(spec.params, GsuParams::paper_baseline());
        assert!(spec.is_paper_shaped());
        assert_eq!(spec.phi_grid.len(), 5);
        assert_eq!(spec.escorts, 1);
        assert_eq!(spec.sim_replications, 1500);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("# leading comment\n\n{MINIMAL}# trailing\n");
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn phi_points_expands_uniformly() {
        let text = MINIMAL.replace("phi_grid 0 2500 5000 7500 10000", "phi_points 5");
        let spec = parse(&text).unwrap();
        assert_eq!(spec.phi_grid, vec![0.0, 2500.0, 5000.0, 7500.0, 10_000.0]);
    }

    #[test]
    fn extended_keys_parse() {
        let text = MINIMAL.to_string()
            + "escorts 3\nwaves 3 0.002 0.5\ncoverage_decay 0.2\naging 0.001 10 rejuvenate 0.01\nsim_reps 800\nsim_seed 42\n";
        let spec = parse(&text).unwrap();
        assert_eq!(spec.escorts, 3);
        assert_eq!(
            spec.waves,
            Some(WaveSpec {
                count: 3,
                rate: 0.002,
                factor: 0.5
            })
        );
        assert_eq!(spec.coverage_decay, 0.2);
        assert_eq!(
            spec.aging,
            Some(AgingSpec {
                rate: 0.001,
                factor: 10.0,
                rejuvenation: Some(0.01)
            })
        );
        assert_eq!(spec.sim_replications, 800);
        assert_eq!(spec.sim_seed, 42);
        assert!(!spec.is_paper_shaped());
    }

    #[test]
    fn dist_variants_parse() {
        let text = MINIMAL
            .replace("at exp 6000", "at erlang 3 18000")
            .replace("ckpt exp 6000", "ckpt hyper 0.25 3000 0.75 9000");
        let spec = parse(&text).unwrap();
        assert_eq!(
            spec.at,
            Dist::Erlang {
                k: 3,
                rate: 18000.0
            }
        );
        assert!((spec.params.alpha - 6000.0).abs() < 1e-9);
        assert!(matches!(spec.ckpt, Dist::Hyper { .. }));
    }

    #[test]
    fn error_positions_are_exact() {
        // Unknown key on line 3, column 1.
        let text = "scenario \"x\"\ntheta 100\nbogus 1\n";
        let err = parse(text).unwrap_err();
        assert_eq!(
            (err.line, err.col, err.kind),
            (3, 1, ParseErrorKind::UnknownKey)
        );
        // Bad number: column of the offending token.
        let text = "scenario \"x\"\nlambda twelve\n";
        let err = parse(text).unwrap_err();
        assert_eq!(
            (err.line, err.col, err.kind),
            (2, 8, ParseErrorKind::BadNumber)
        );
    }

    #[test]
    fn missing_required_key_is_reported() {
        let text = MINIMAL.replace("mu_new 1e-4\n", "");
        let err = parse(&text).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingKey);
        assert!(err.message.contains("mu_new"), "{}", err.message);
    }
}
