//! Analytic-vs-simulation cross-validation of scenario curves.
//!
//! Every catalog scenario is checked against an independent Monte-Carlo
//! estimate, with the backend picked per scenario shape:
//!
//! * **paper-shaped** scenarios run through the dedicated MDCD simulator
//!   (`mdcd-sim`) with the `S2` discount γ pinned to the analytic value
//!   (matched-γ comparison of the full index Y(φ)); the event-exact engine
//!   is used when trajectories are cheap, the two-level hybrid engine at
//!   mission scale;
//! * **extended** scenarios (escorts, waves, decay, aging, phase-type
//!   safeguards) have no dedicated simulator, so the compiled dependability
//!   SAN itself is simulated by the `san` discrete-event engine and the
//!   `A'1` / `A'3` state-set probabilities are compared at each φ. These
//!   scenarios must be scaled down (the DES cost grows with `λ·φ`); the
//!   harness refuses mission-scale extended scenarios instead of hanging.
//!
//! All seeds derive from the scenario's `sim_seed`, so a passing report is
//! deterministic — the catalog test is not flaky by construction.

use san::simulate::{estimate_instant_reward, SimulationOptions};
use san::RewardSpec;

use crate::analysis::ScenarioAnalysis;
use crate::ScenarioError;

/// DES work ceiling for extended scenarios: expected events per trajectory
/// beyond which cross-validation refuses to run (≈ seconds per φ point).
pub const MAX_DES_EVENTS_PER_TRAJECTORY: f64 = 500_000.0;

/// Exact-engine ceiling for paper-shaped scenarios; above this the hybrid
/// engine takes over.
pub const MAX_EXACT_EVENTS_PER_TRAJECTORY: f64 = 20_000.0;

/// Which simulation backend validates a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Dedicated MDCD simulator, event-exact engine.
    MdcdExact,
    /// Dedicated MDCD simulator, two-level hybrid engine.
    MdcdHybrid,
    /// Discrete-event simulation of the compiled dependability SAN.
    SanDes,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::MdcdExact => "mdcd-exact",
            Backend::MdcdHybrid => "mdcd-hybrid",
            Backend::SanDes => "san-des",
        })
    }
}

/// One compared quantity at one φ.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossvalPoint {
    /// The guarded-operation duration.
    pub phi: f64,
    /// What was compared (`Y`, `P(A'1)`, `P(A'3)`).
    pub measure: &'static str,
    /// The analytic value.
    pub analytic: f64,
    /// The Monte-Carlo estimate.
    pub simulated: f64,
    /// The estimate's 95% confidence half-width.
    pub half_width: f64,
    /// The acceptance threshold applied to `|analytic − simulated|`.
    pub tolerance: f64,
    /// Whether the point passed.
    pub ok: bool,
}

/// The cross-validation outcome for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossvalReport {
    /// The scenario name.
    pub scenario: String,
    /// The backend used.
    pub backend: Backend,
    /// Every compared point.
    pub points: Vec<CrossvalPoint>,
}

impl CrossvalReport {
    /// `true` when every compared point is within tolerance.
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(|p| p.ok)
    }

    /// The failing points, for diagnostics.
    pub fn failures(&self) -> Vec<&CrossvalPoint> {
        self.points.iter().filter(|p| !p.ok).collect()
    }
}

/// Picks the backend for a scenario.
pub fn backend_for(spec: &crate::ScenarioSpec) -> Backend {
    if spec.is_paper_shaped() {
        if spec.events_per_trajectory() <= MAX_EXACT_EVENTS_PER_TRAJECTORY {
            Backend::MdcdExact
        } else {
            Backend::MdcdHybrid
        }
    } else {
        Backend::SanDes
    }
}

/// Selects up to `max_points` interior φ values from the scenario grid
/// (φ = 0 is excluded: both sides are exactly degenerate there).
fn pick_phis(grid: &[f64], max_points: usize) -> Vec<f64> {
    let interior: Vec<f64> = grid.iter().copied().filter(|&phi| phi > 0.0).collect();
    if interior.len() <= max_points || max_points == 0 {
        return interior;
    }
    // Evenly spaced picks that always include the last grid point.
    (0..max_points)
        .map(|i| interior[(i * (interior.len() - 1)) / (max_points - 1).max(1)])
        .collect()
}

/// Cross-validates a prepared scenario against Monte-Carlo simulation at up
/// to `max_points` φ values.
///
/// # Errors
///
/// Refuses mission-scale extended scenarios (see
/// [`MAX_DES_EVENTS_PER_TRAJECTORY`]) and propagates analytic-solver and
/// simulator failures.
pub fn crossval(
    analysis: &ScenarioAnalysis,
    max_points: usize,
) -> Result<CrossvalReport, ScenarioError> {
    let spec = analysis.spec();
    let backend = backend_for(spec);
    let phis = pick_phis(&spec.phi_grid, max_points);
    let mut span = telemetry::span("scenario.crossval");
    span.record("scenario", spec.name.as_str());
    span.record("points", phis.len());

    let points = match backend {
        Backend::MdcdExact | Backend::MdcdHybrid => {
            let engine = if backend == Backend::MdcdExact {
                mdcd_sim::EngineKind::Exact
            } else {
                mdcd_sim::EngineKind::Hybrid
            };
            let mut points = Vec::with_capacity(phis.len());
            for (i, &phi) in phis.iter().enumerate() {
                let analytic = analysis.evaluate(phi)?;
                let est = mdcd_sim::estimate_y_matched(
                    spec.params,
                    phi,
                    analytic.gamma,
                    spec.sim_replications,
                    spec.sim_seed.wrapping_add(i as u64),
                    engine,
                )
                .map_err(ScenarioError::Model)?;
                let tolerance = (4.0 * est.half_width_95).max(0.05 * analytic.y.abs());
                let ok = (analytic.y - est.y).abs() <= tolerance;
                points.push(CrossvalPoint {
                    phi,
                    measure: "Y",
                    analytic: analytic.y,
                    simulated: est.y,
                    half_width: est.half_width_95,
                    tolerance,
                    ok,
                });
            }
            points
        }
        Backend::SanDes => {
            if spec.events_per_trajectory() > MAX_DES_EVENTS_PER_TRAJECTORY {
                return Err(ScenarioError::Invalid {
                    file: spec.name.clone(),
                    message: format!(
                        "extended scenario expects ~{:.0} events per DES trajectory \
                         (limit {MAX_DES_EVENTS_PER_TRAJECTORY:.0}); scale theta/lambda down",
                        spec.events_per_trajectory()
                    ),
                });
            }
            let gd = crate::model::build_gd(spec)?;
            let places = gd.places.clone();
            let opts = SimulationOptions::default();
            let mut points = Vec::with_capacity(2 * phis.len());
            for (i, &phi) in phis.iter().enumerate() {
                let seed = spec.sim_seed.wrapping_add(i as u64);
                for (j, (measure, kind)) in [("P(A'1)", SetKind::A1), ("P(A'3)", SetKind::A3)]
                    .into_iter()
                    .enumerate()
                {
                    let analyzer = analysis.gd_analyzer();
                    let p = places.clone();
                    let analytic = analyzer
                        .probability_at(phi, move |mk| kind.test(&p, mk))
                        .map_err(performability::PerfError::from)?;
                    let p = places.clone();
                    let spec_reward = RewardSpec::new().rate_when(move |mk| kind.test(&p, mk), 1.0);
                    let est = estimate_instant_reward(
                        &gd.model,
                        &spec_reward,
                        phi,
                        spec.sim_replications,
                        seed.wrapping_add(0x0A3 * j as u64),
                        &opts,
                    )
                    .map_err(performability::PerfError::from)?;
                    let tolerance = 4.0 * est.half_width_95 + 0.01;
                    let ok = (analytic - est.mean).abs() <= tolerance;
                    points.push(CrossvalPoint {
                        phi,
                        measure,
                        analytic,
                        simulated: est.mean,
                        half_width: est.half_width_95,
                        tolerance,
                        ok,
                    });
                }
            }
            points
        }
    };

    if telemetry::enabled() {
        span.record("failures", points.iter().filter(|p| !p.ok).count());
    }
    Ok(CrossvalReport {
        scenario: spec.name.clone(),
        backend,
        points,
    })
}

/// Which A' state set a DES probe compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SetKind {
    A1,
    A3,
}

impl SetKind {
    fn test(self, places: &crate::model::GdPlaces, mk: &san::Marking) -> bool {
        use performability::gsu::GopStateSets;
        match self {
            SetKind::A1 => places.in_a1(mk),
            SetKind::A3 => places.in_a3(mk),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Dist, ScenarioSpec};
    use performability::GsuParams;

    fn scaled_paper_spec() -> ScenarioSpec {
        let params = GsuParams {
            theta: 50.0,
            lambda: 40.0,
            mu_new: 0.02,
            mu_old: 1e-7,
            coverage: 0.95,
            p_ext: 0.1,
            alpha: 200.0,
            beta: 200.0,
        };
        ScenarioSpec {
            name: "scaled".to_string(),
            at: Dist::Exp { rate: params.alpha },
            ckpt: Dist::Exp { rate: params.beta },
            params,
            escorts: 1,
            waves: None,
            coverage_decay: 0.0,
            aging: None,
            phi_grid: vec![0.0, 25.0, 50.0],
            sim_replications: 1500,
            sim_seed: 21,
        }
    }

    #[test]
    fn backend_selection_follows_shape_and_scale() {
        let mut spec = scaled_paper_spec();
        assert_eq!(backend_for(&spec), Backend::MdcdExact);
        spec.params.theta = 10_000.0;
        spec.params.lambda = 1200.0;
        spec.phi_grid = vec![0.0, 10_000.0];
        assert_eq!(backend_for(&spec), Backend::MdcdHybrid);
        spec.escorts = 2;
        assert_eq!(backend_for(&spec), Backend::SanDes);
    }

    #[test]
    fn mission_scale_extended_scenarios_are_refused() {
        let mut spec = scaled_paper_spec();
        spec.params.theta = 10_000.0;
        spec.params.lambda = 1200.0;
        spec.phi_grid = vec![0.0, 10_000.0];
        spec.escorts = 2;
        let analysis = ScenarioAnalysis::new(spec).unwrap();
        let err = crossval(&analysis, 1).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }

    #[test]
    fn scaled_paper_scenario_cross_validates() {
        let analysis = ScenarioAnalysis::new(scaled_paper_spec()).unwrap();
        let report = crossval(&analysis, 2).unwrap();
        assert_eq!(report.backend, Backend::MdcdExact);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
    }

    #[test]
    fn extended_scenario_cross_validates_by_des() {
        let mut spec = scaled_paper_spec();
        spec.escorts = 2;
        spec.sim_replications = 2000;
        let analysis = ScenarioAnalysis::new(spec).unwrap();
        let report = crossval(&analysis, 1).unwrap();
        assert_eq!(report.backend, Backend::SanDes);
        assert!(report.all_ok(), "failures: {:?}", report.failures());
    }

    #[test]
    fn phi_picks_span_the_grid() {
        assert_eq!(pick_phis(&[0.0, 1.0, 2.0, 3.0], 2), vec![1.0, 3.0]);
        assert_eq!(pick_phis(&[0.0, 5.0], 4), vec![5.0]);
    }
}
