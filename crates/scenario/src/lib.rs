//! Scenario DSL and golden-curve catalog for parameterized GSU families.
//!
//! The paper's analysis covers one model shape: a single escorted process,
//! exponential safeguard durations, constant AT coverage. This crate
//! describes *families* of guarded software upgrades in a small line-based
//! DSL (`.gsu` files — see `SCENARIOS.md` for the grammar), lowers each
//! scenario onto generalized SAN reward models through the same successive
//! model translation, and cross-validates the analytic Y(φ) curves against
//! Monte-Carlo simulation. The committed catalog under `scenarios/` with
//! golden curves under `results/golden/` is the regression surface.
//!
//! ```
//! use gsu_scenario::{parse, ScenarioAnalysis};
//!
//! let spec = parse(
//!     "scenario \"demo\"\n\
//!      theta 10000\nlambda 1200\nmu_new 1e-4\nmu_old 1e-8\n\
//!      coverage 0.95\np_ext 0.1\nat exp 6000\nckpt exp 6000\n\
//!      phi_grid 0 5000 10000\n",
//! )
//! .unwrap();
//! let analysis = ScenarioAnalysis::new(spec).unwrap();
//! assert!(analysis.evaluate(5000.0).unwrap().y > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod crossval;
pub mod model;
pub mod parse;

mod analysis;

pub use analysis::ScenarioAnalysis;
pub use ast::{AgingSpec, Dist, ScenarioSpec, WaveSpec};
pub use catalog::{load_dir, read_golden, write_golden, GoldenCurve};
pub use crossval::{crossval, Backend, CrossvalPoint, CrossvalReport};
pub use parse::{parse, ParseError, ParseErrorKind};

/// Errors produced by catalog loading and cross-validation.
#[derive(Debug)]
pub enum ScenarioError {
    /// A `.gsu` file failed to parse.
    Parse {
        /// The offending file.
        file: String,
        /// The parse failure with its position.
        error: ParseError,
    },
    /// Model lowering or solving failed.
    Model(performability::PerfError),
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// A catalog invariant is violated (name mismatch, bad golden file…).
    Invalid {
        /// The offending file.
        file: String,
        /// What is wrong.
        message: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { file, error } => write!(f, "{file}: {error}"),
            ScenarioError::Model(e) => write!(f, "model error: {e}"),
            ScenarioError::Io { path, message } => write!(f, "{path}: {message}"),
            ScenarioError::Invalid { file, message } => write!(f, "{file}: {message}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<performability::PerfError> for ScenarioError {
    fn from(e: performability::PerfError) -> Self {
        ScenarioError::Model(e)
    }
}
