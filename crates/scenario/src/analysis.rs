//! The scenario analysis pipeline: generalized models → constituent
//! measures → performability curve.
//!
//! [`ScenarioAnalysis`] is the scenario-level counterpart of
//! `performability::GsuAnalysis`: it lowers one [`ScenarioSpec`] through
//! [`crate::model`] and drives the same successive translation — the
//! φ-independent pieces (overhead steady state, full-window normal-mode
//! survival) are solved at construction, and every φ evaluation reuses the
//! generic `gop_measures` engine plus two normal-mode transients. For a
//! paper-shaped scenario the numbers match `GsuAnalysis` (asserted below).

use performability::gsu::gop_measures;
use performability::{assemble, ConstituentMeasures, GammaPolicy, Result, SweepPoint};
use san::Analyzer;

use crate::ast::ScenarioSpec;
use crate::model::{self, GdPlaces};

/// A fully prepared scenario: models built, φ-independent measures solved.
pub struct ScenarioAnalysis {
    spec: ScenarioSpec,
    gamma_policy: GammaPolicy,
    rho: (f64, f64),
    gd_analyzer: Analyzer,
    gd_places: GdPlaces,
    np_new: Analyzer,
    np_new_failure: san::PlaceId,
    np_old: Analyzer,
    np_old_failure: san::PlaceId,
    p_a1_norm_theta: f64,
}

impl ScenarioAnalysis {
    /// Lowers the scenario to its three generalized models and solves the
    /// φ-independent measures.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation, phase-type compilation, and model
    /// generation/solution failures.
    pub fn new(spec: ScenarioSpec) -> Result<Self> {
        spec.params.validate()?;
        let mut span = telemetry::span("scenario.build");
        span.record("escorts", spec.escorts);

        let rho = model::solve_rho(&spec)?;

        let gd = model::build_gd(&spec)?;
        let gd_analyzer = Analyzer::generate(&gd.model, &Default::default())?;

        let np_new = model::build_np(&spec, spec.params.mu_new)?;
        let np_new_analyzer = Analyzer::generate(&np_new.model, &Default::default())?;
        let np_old = model::build_np(&spec, spec.params.mu_old)?;
        let np_old_analyzer = Analyzer::generate(&np_old.model, &Default::default())?;

        let failure = np_new.places.failure;
        let p_a1_norm_theta =
            np_new_analyzer.probability_at(spec.params.theta, move |mk| mk.tokens(failure) == 0)?;

        if telemetry::enabled() {
            span.record("rho1", rho.0);
            span.record("rho2", rho.1);
            span.record("gd_states", gd_analyzer.state_space().n_states());
        }

        Ok(ScenarioAnalysis {
            spec,
            gamma_policy: GammaPolicy::default(),
            rho,
            gd_analyzer,
            gd_places: gd.places,
            np_new: np_new_analyzer,
            np_new_failure: np_new.places.failure,
            np_old: np_old_analyzer,
            np_old_failure: np_old.places.failure,
            p_a1_norm_theta,
        })
    }

    /// The scenario under analysis.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The forward-progress fractions `(ρ1, ρ2)` of the overhead model.
    pub fn rho(&self) -> (f64, f64) {
        self.rho
    }

    /// The analyzer of the generalized dependability model (for
    /// cross-validation probes).
    pub fn gd_analyzer(&self) -> &Analyzer {
        &self.gd_analyzer
    }

    /// The place handles of the generalized dependability model.
    pub fn gd_places(&self) -> &GdPlaces {
        &self.gd_places
    }

    /// Solves the nine constituent reward variables at one φ.
    ///
    /// # Errors
    ///
    /// Rejects φ outside `[0, θ]` and propagates solver failures.
    pub fn measures(&self, phi: f64) -> Result<ConstituentMeasures> {
        self.spec.params.validate_phi(phi)?;
        let gop = gop_measures(&self.gd_analyzer, self.gd_places.clone(), phi)?;

        let remaining = self.spec.params.theta - phi;
        let new_failure = self.np_new_failure;
        let p_a1_norm_rem = self
            .np_new
            .probability_at(remaining, move |mk| mk.tokens(new_failure) == 0)?;
        let old_failure = self.np_old_failure;
        let i_f = 1.0
            - self
                .np_old
                .probability_at(remaining, move |mk| mk.tokens(old_failure) == 0)?;

        Ok(ConstituentMeasures {
            p_a1_gop: gop.p_a1,
            p_a1_norm_theta: self.p_a1_norm_theta,
            p_a1_norm_rem,
            rho1: self.rho.0,
            rho2: self.rho.1,
            i_h: gop.i_h,
            i_tau_h: gop.i_tau_h,
            i_tau_h_exact: gop.i_tau_h_exact,
            i_hf: gop.i_hf,
            i_f,
        })
    }

    /// Evaluates the performability index at one φ.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ScenarioAnalysis::measures`].
    pub fn evaluate(&self, phi: f64) -> Result<SweepPoint> {
        let measures = self.measures(phi)?;
        assemble(self.spec.params.theta, phi, &measures, self.gamma_policy)
    }

    /// Evaluates the scenario's own φ grid — the golden curve. Points are
    /// solved in parallel on the global [`pool::Pool`]; each φ is an
    /// independent evaluation, so the curve is bitwise identical at any
    /// thread count.
    ///
    /// # Errors
    ///
    /// Fails with the error of the lowest-index φ whose evaluation fails.
    pub fn curve(&self) -> Result<Vec<SweepPoint>> {
        self.spec.params.validate_phi_grid(&self.spec.phi_grid)?;
        let workers = pool::Pool::current();
        let mut span = telemetry::span("scenario.curve");
        span.record("points", self.spec.phi_grid.len());
        workers.try_map_indexed(self.spec.phi_grid.clone(), |_, phi| self.evaluate(phi))
    }
}

impl std::fmt::Debug for ScenarioAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioAnalysis")
            .field("scenario", &self.spec.name)
            .field("rho", &self.rho)
            .field("p_a1_norm_theta", &self.p_a1_norm_theta)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Dist;
    use performability::{GsuAnalysis, GsuParams};

    fn paper_spec() -> ScenarioSpec {
        let params = GsuParams::paper_baseline();
        ScenarioSpec {
            name: "paper".to_string(),
            at: Dist::Exp { rate: params.alpha },
            ckpt: Dist::Exp { rate: params.beta },
            params,
            escorts: 1,
            waves: None,
            coverage_decay: 0.0,
            aging: None,
            phi_grid: vec![0.0, 2500.0, 5000.0, 7500.0, 10_000.0],
            sim_replications: 100,
            sim_seed: 7,
        }
    }

    #[test]
    fn paper_shaped_scenario_matches_gsu_analysis() {
        let spec = paper_spec();
        let scenario = ScenarioAnalysis::new(spec.clone()).unwrap();
        let direct = GsuAnalysis::new(spec.params).unwrap();
        for phi in [0.0, 2500.0, 7000.0, 10_000.0] {
            let s = scenario.evaluate(phi).unwrap();
            let d = direct.evaluate(phi).unwrap();
            assert!(
                (s.y - d.y).abs() < 1e-9,
                "phi = {phi}: scenario {} vs direct {}",
                s.y,
                d.y
            );
            assert!((s.gamma - d.gamma).abs() < 1e-9, "phi = {phi}");
        }
    }

    #[test]
    fn curve_covers_grid_and_starts_at_unity() {
        let scenario = ScenarioAnalysis::new(paper_spec()).unwrap();
        let curve = scenario.curve().unwrap();
        assert_eq!(curve.len(), 5);
        assert!((curve[0].y - 1.0).abs() < 1e-9);
        assert_eq!(curve[4].phi, 10_000.0);
    }

    #[test]
    fn measures_validate_for_extended_scenarios() {
        let mut spec = paper_spec();
        spec.escorts = 2;
        spec.at = Dist::Erlang {
            k: 3,
            rate: 3.0 * spec.params.alpha,
        };
        let scenario = ScenarioAnalysis::new(spec).unwrap();
        for phi in [0.0, 5000.0, 10_000.0] {
            let m = scenario.measures(phi).unwrap();
            m.validate(phi).unwrap();
        }
    }
}
