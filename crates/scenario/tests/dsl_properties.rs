//! DSL round-trip property tests and exhaustive negative cases.
//!
//! The positive half generates random valid [`ScenarioSpec`]s, serializes
//! them with [`ScenarioSpec::to_dsl`], and asserts the parse is an exact
//! identity (f64 `Display` round-trips through `str::parse`, so equality is
//! bitwise). The negative half pins every [`ParseErrorKind`] to an exact
//! line, column, and message so error positions never silently drift.

use gsu_scenario::ast::{AgingSpec, Dist, ScenarioSpec, WaveSpec};
use gsu_scenario::parse::{parse, ParseError, ParseErrorKind};
use performability::GsuParams;
use proptest::prelude::*;

const NAME_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";

fn arb_name() -> impl Strategy<Value = String> {
    collection::vec(0usize..NAME_ALPHABET.len(), 1..16)
        .prop_map(|ix| ix.into_iter().map(|i| NAME_ALPHABET[i] as char).collect())
}

fn arb_dist() -> impl Strategy<Value = Dist> {
    (
        0usize..4,
        1usize..17,
        0.001..10_000.0f64,
        0.05..0.95f64,
        0.001..10_000.0f64,
    )
        .prop_map(|(tag, k, rate, w, rate2)| match tag {
            0 => Dist::Exp { rate },
            1 => Dist::Erlang { k, rate },
            2 => Dist::Hyper {
                branches: vec![(w, rate), (1.0 - w, rate2)],
            },
            _ => Dist::Det {
                mean: rate,
                stages: k,
            },
        })
}

fn arb_waves() -> impl Strategy<Value = Option<WaveSpec>> {
    (0usize..2, 2usize..9, 0.0001..10.0f64, 0.01..1.0f64).prop_map(|(on, count, rate, factor)| {
        (on == 1).then_some(WaveSpec {
            count,
            rate,
            factor,
        })
    })
}

fn arb_aging() -> impl Strategy<Value = Option<AgingSpec>> {
    (0usize..3, 0.0001..1.0f64, 1.0..100.0f64, 0.0001..1.0f64).prop_map(
        |(tag, rate, factor, rejuvenation)| match tag {
            0 => None,
            1 => Some(AgingSpec {
                rate,
                factor,
                rejuvenation: None,
            }),
            _ => Some(AgingSpec {
                rate,
                factor,
                rejuvenation: Some(rejuvenation),
            }),
        },
    )
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let base = (
        arb_name(),
        10.0..20_000.0f64,          // theta
        0.01..5_000.0f64,           // lambda
        1e-8..1.0f64,               // mu_new
        0.0..1e-3f64,               // mu_old
        (0.0..1.0f64, 0.0..1.0f64), // coverage, p_ext
        arb_dist(),
        arb_dist(),
    );
    let extra = (
        1usize..5, // escorts
        arb_waves(),
        (0usize..2, 0.0..0.5f64), // coverage_decay gate + value
        arb_aging(),
        collection::vec(0.0..1.0f64, 2..7), // phi fractions of theta
        1usize..100_000,                    // sim_reps
        0u64..u64::MAX,                     // sim_seed (tests > 2^53 too)
    );
    (base, extra).prop_map(
        |(
            (name, theta, lambda, mu_new, mu_old, (coverage, p_ext), at, ckpt),
            (escorts, waves, (decay_on, decay), aging, fracs, sim_reps, sim_seed),
        )| {
            let mut phi_grid: Vec<f64> = fracs.into_iter().map(|f| f * theta).collect();
            phi_grid.sort_by(f64::total_cmp);
            ScenarioSpec {
                name,
                params: GsuParams {
                    theta,
                    lambda,
                    mu_new,
                    mu_old,
                    coverage,
                    p_ext,
                    alpha: at.mean_rate(),
                    beta: ckpt.mean_rate(),
                },
                at,
                ckpt,
                escorts,
                waves,
                coverage_decay: if decay_on == 1 { decay } else { 0.0 },
                aging,
                phi_grid,
                sim_replications: sim_reps,
                sim_seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ to_dsl is the identity on valid specs.
    #[test]
    fn dsl_round_trips_exactly(spec in arb_spec()) {
        let text = spec.to_dsl();
        let back = parse(&text).map_err(|e| {
            TestCaseError::Fail(format!("round-trip parse failed: {e}\n{text}"))
        })?;
        prop_assert!(spec == back, "round-trip changed the spec; document:\n{}", text);
    }

    /// Serialization is canonical: to_dsl ∘ parse ∘ to_dsl = to_dsl.
    #[test]
    fn serialization_is_idempotent(spec in arb_spec()) {
        let text = spec.to_dsl();
        let again = parse(&text).unwrap().to_dsl();
        prop_assert_eq!(text, again);
    }

    /// Comments and extra blank lines never change the parse.
    #[test]
    fn comments_are_transparent(spec in arb_spec(), pad in 0usize..4) {
        let text = spec.to_dsl();
        let mut noisy = String::from("# generated\n");
        for line in text.lines() {
            noisy.push_str(line);
            noisy.push_str("  # inline comment\n");
            for _ in 0..pad {
                noisy.push('\n');
            }
        }
        prop_assert_eq!(parse(&noisy).unwrap(), spec);
    }
}

// ---------------------------------------------------------------------------
// Negative cases: one exact (line, column, kind, message) pin per error
// class, so parser positions are part of the public contract.
// ---------------------------------------------------------------------------

fn err_of(text: &str) -> ParseError {
    parse(text).expect_err("document should not parse")
}

#[track_caller]
fn assert_err(text: &str, line: usize, col: usize, kind: ParseErrorKind, message: &str) {
    let err = err_of(text);
    assert_eq!(
        (err.line, err.col, err.kind),
        (line, col, kind),
        "wrong position/kind for {text:?}: got message `{}`",
        err.message
    );
    assert_eq!(err.message, message, "wrong message for {text:?}");
    // Display embeds the position in the documented format.
    assert_eq!(
        err.to_string(),
        format!("line {line}, column {col}: {message}")
    );
}

const VALID_TAIL: &str = "theta 100\nlambda 10\nmu_new 1e-4\nmu_old 0\ncoverage 0.9\n\
                          p_ext 0.1\nat exp 50\nckpt exp 50\nphi_grid 0 100\n";

#[test]
fn missing_header_is_reported_at_first_token() {
    assert_err(
        "theta 100\n",
        1,
        1,
        ParseErrorKind::MissingHeader,
        "the first line must be `scenario \"<name>\"`",
    );
    // Indented first token: column tracks the token, not the line start.
    assert_err(
        "   theta 100\n",
        1,
        4,
        ParseErrorKind::MissingHeader,
        "the first line must be `scenario \"<name>\"`",
    );
    assert_err(
        "# only comments\n\n",
        1,
        1,
        ParseErrorKind::MissingHeader,
        "empty document: expected `scenario \"<name>\"`",
    );
}

#[test]
fn bad_names_are_reported_at_the_name_token() {
    assert_err(
        "scenario x\n",
        1,
        10,
        ParseErrorKind::BadName,
        "scenario name must be double-quoted",
    );
    assert_err(
        "scenario \"b@d\"\n",
        1,
        10,
        ParseErrorKind::BadName,
        "scenario name `b@d` must be non-empty [A-Za-z0-9._-]",
    );
    assert_err(
        "scenario \"\"\n",
        1,
        10,
        ParseErrorKind::BadName,
        "scenario name `` must be non-empty [A-Za-z0-9._-]",
    );
}

#[test]
fn unknown_keys_are_reported_at_the_key() {
    assert_err(
        "scenario \"x\"\ntheta 100\n  frobnicate 3\n",
        3,
        3,
        ParseErrorKind::UnknownKey,
        "unknown key `frobnicate`",
    );
}

#[test]
fn duplicate_keys_point_back_to_the_first_occurrence() {
    assert_err(
        "scenario \"x\"\ntheta 100\ntheta 200\n",
        3,
        1,
        ParseErrorKind::DuplicateKey,
        "key `theta` already given at line 2, column 1",
    );
    assert_err(
        "scenario \"x\"\nscenario \"y\"\n",
        2,
        1,
        ParseErrorKind::DuplicateKey,
        "only one `scenario` header is allowed",
    );
    let text = format!("scenario \"x\"\n{VALID_TAIL}phi_points 5\n");
    assert_err(
        &text,
        11,
        1,
        ParseErrorKind::DuplicateKey,
        "give either phi_grid or phi_points, not both",
    );
}

#[test]
fn bad_numbers_are_reported_at_the_value_token() {
    assert_err(
        "scenario \"x\"\nlambda twelve\n",
        2,
        8,
        ParseErrorKind::BadNumber,
        "`twelve` is not a finite number",
    );
    assert_err(
        "scenario \"x\"\ntheta inf\n",
        2,
        7,
        ParseErrorKind::BadNumber,
        "`inf` is not a finite number",
    );
    assert_err(
        "scenario \"x\"\nescorts 1.5\n",
        2,
        9,
        ParseErrorKind::BadNumber,
        "`1.5` is not a non-negative integer",
    );
}

#[test]
fn wrong_arity_is_reported_at_the_key() {
    assert_err(
        "scenario \"x\"\ntheta 1 2\n",
        2,
        1,
        ParseErrorKind::WrongArity,
        "key `theta` takes 1 value, got 2",
    );
    assert_err(
        "scenario \"x\"\nat\n",
        2,
        1,
        ParseErrorKind::WrongArity,
        "key `at` needs a distribution",
    );
    assert_err(
        "scenario \"x\"\nat hyper 0.5 10 0.5\n",
        2,
        4,
        ParseErrorKind::WrongArity,
        "hyper takes weight/rate pairs",
    );
    assert_err(
        "scenario \"x\"\nphi_grid 0\n",
        2,
        1,
        ParseErrorKind::WrongArity,
        "phi_grid needs at least 2 points, got 1",
    );
    assert_err(
        "scenario \"x\"\naging 0.1\n",
        2,
        1,
        ParseErrorKind::WrongArity,
        "key `aging` takes `RATE FACTOR [rejuvenate RATE]`, got 1 values",
    );
}

#[test]
fn unknown_distributions_are_reported_at_the_distribution_token() {
    assert_err(
        "scenario \"x\"\nat gamma 3 5\n",
        2,
        4,
        ParseErrorKind::UnknownDistribution,
        "unknown distribution `gamma` (expected exp, erlang, hyper, or det)",
    );
}

#[test]
fn invalid_values_are_reported_at_the_value_token() {
    assert_err(
        "scenario \"x\"\ncoverage 1.5\n",
        2,
        10,
        ParseErrorKind::InvalidValue,
        "coverage must be within [0, 1], got 1.5",
    );
    assert_err(
        "scenario \"x\"\ntheta -5\n",
        2,
        7,
        ParseErrorKind::InvalidValue,
        "theta must be > 0, got -5",
    );
    assert_err(
        "scenario \"x\"\nescorts 9\n",
        2,
        9,
        ParseErrorKind::InvalidValue,
        "escorts must be within [1, 4], got 9",
    );
    assert_err(
        "scenario \"x\"\nwaves 3 0.1 1.5\n",
        2,
        13,
        ParseErrorKind::InvalidValue,
        "wave factor must be within (0, 1], got 1.5",
    );
    assert_err(
        "scenario \"x\"\naging 0.1 0.5\n",
        2,
        11,
        ParseErrorKind::InvalidValue,
        "aging factor must be >= 1, got 0.5",
    );
    assert_err(
        "scenario \"x\"\nphi_grid 10 5\n",
        2,
        13,
        ParseErrorKind::InvalidValue,
        "phi_grid must be ascending, 5 after 10",
    );
    assert_err(
        "scenario \"x\"\nat erlang 99 10\n",
        2,
        11,
        ParseErrorKind::InvalidValue,
        "erlang stages must be within [1, 16], got 99",
    );
    assert_err(
        "scenario \"x\"\nat hyper 0.2 10 0.2 20\n",
        2,
        4,
        ParseErrorKind::InvalidValue,
        "hyper branch weights must sum to 1, got 0.4",
    );
    // Grid beyond theta is caught at end-of-document, at the grid key.
    let text = "scenario \"x\"\ntheta 100\nlambda 10\nmu_new 1e-4\nmu_old 0\ncoverage 0.9\n\
                p_ext 0.1\nat exp 50\nckpt exp 50\nphi_grid 0 200\n";
    assert_err(
        text,
        10,
        1,
        ParseErrorKind::InvalidValue,
        "phi_grid reaches 200, beyond theta = 100",
    );
}

#[test]
fn missing_required_keys_are_reported_at_the_header() {
    let text = "scenario \"x\"\ntheta 100\n";
    assert_err(
        text,
        1,
        1,
        ParseErrorKind::MissingKey,
        "scenario `x` is missing required key `lambda`",
    );
    // Indented header: the position tracks the header token.
    let text = "  scenario \"x\"\ntheta 100\nlambda 10\nmu_new 1e-4\nmu_old 0\n\
                coverage 0.9\np_ext 0.1\nat exp 50\nckpt exp 50\n";
    assert_err(
        text,
        1,
        3,
        ParseErrorKind::MissingKey,
        "scenario `x` is missing required key `phi_grid`",
    );
}

#[test]
fn every_error_kind_is_covered() {
    // Compile-time completeness guard: adding a ParseErrorKind variant
    // without a negative-case test above must break this match.
    let all = [
        ParseErrorKind::MissingHeader,
        ParseErrorKind::BadName,
        ParseErrorKind::UnknownKey,
        ParseErrorKind::DuplicateKey,
        ParseErrorKind::BadNumber,
        ParseErrorKind::WrongArity,
        ParseErrorKind::UnknownDistribution,
        ParseErrorKind::InvalidValue,
        ParseErrorKind::MissingKey,
    ];
    for kind in all {
        match kind {
            ParseErrorKind::MissingHeader
            | ParseErrorKind::BadName
            | ParseErrorKind::UnknownKey
            | ParseErrorKind::DuplicateKey
            | ParseErrorKind::BadNumber
            | ParseErrorKind::WrongArity
            | ParseErrorKind::UnknownDistribution
            | ParseErrorKind::InvalidValue
            | ParseErrorKind::MissingKey => {}
        }
    }
}
