//! The flight-recorder profiler: `gsu-bench profile --trace PATH`.
//!
//! Reads a Chrome `trace_event` document written by this workspace's own
//! collector ([`telemetry::Collector::write_chrome_trace`] or the
//! `/trace?id=` endpoint of `gsu-serve`), rebuilds the span tree from the
//! `span_id`/`parent_id` args every event carries, and renders two views:
//!
//! - **folded stacks** (`root;child;leaf N`, one line per call path, `N` =
//!   self time in µs) — the input format of every flamegraph renderer;
//! - a **self-time table** aggregated by span name, sorted hottest first.
//!
//! Self time is a span's duration minus the duration of its direct
//! children. Children fanned out to pool workers run concurrently with
//! their parent, so the subtraction saturates at zero rather than going
//! negative.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One complete (`ph == "X"`) span event parsed from a trace document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `markov.solve.uniformization`).
    pub name: String,
    /// Wall duration in microseconds.
    pub dur_us: u64,
    /// Span id, unique within the document.
    pub span_id: u64,
    /// Parent span id (`0` = trace root).
    pub parent_id: u64,
    /// Trace (request) id, as the 16-hex-digit string the collector wrote.
    pub trace_id: String,
}

/// Parses the events of a Chrome `trace_event` document produced by this
/// workspace's collector. A minimal scanner, not a general JSON parser:
/// events missing the `span_id`/`parent_id` args (foreign documents) are
/// skipped rather than erroring.
pub fn parse_chrome_trace(doc: &str) -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for chunk in doc.split("{\"name\":\"").skip(1) {
        let Some(name) = chunk.split('"').next() else {
            continue;
        };
        let dur_us = field_u64(chunk, "\"dur\":");
        let span_id = field_u64(chunk, "\"span_id\":");
        let parent_id = field_u64(chunk, "\"parent_id\":");
        let trace_id = chunk
            .split("\"trace_id\":\"")
            .nth(1)
            .and_then(|rest| rest.split('"').next());
        if let (Some(dur_us), Some(span_id), Some(parent_id), Some(trace_id)) =
            (dur_us, span_id, parent_id, trace_id)
        {
            out.push(SpanEvent {
                name: name.to_string(),
                dur_us,
                span_id,
                parent_id,
                trace_id: trace_id.to_string(),
            });
        }
    }
    out
}

fn field_u64(chunk: &str, marker: &str) -> Option<u64> {
    let rest = &chunk[chunk.find(marker)? + marker.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A span-tree profile: per-path self times plus per-name aggregates.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// `(call path, self µs)` per distinct path, lexicographic by path.
    pub paths: Vec<(String, u64)>,
    /// `(name, count, total µs, self µs)` per span name, hottest self first.
    pub by_name: Vec<(String, u64, u64, u64)>,
}

/// Builds a [`Profile`] from parsed events.
///
/// Orphans — spans whose `parent_id` is absent from the document, as happens
/// in a `/trace?id=` export where the request root has since aged out of the
/// ring — are rooted at their own name rather than dropped, so their time
/// still shows up.
pub fn build_profile(events: &[SpanEvent]) -> Profile {
    let by_id: BTreeMap<u64, &SpanEvent> = events.iter().map(|e| (e.span_id, e)).collect();
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        if e.parent_id != 0 && by_id.contains_key(&e.parent_id) {
            *child_us.entry(e.parent_id).or_insert(0) += e.dur_us;
        }
    }

    let mut paths: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_name: BTreeMap<&str, (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        let self_us = e
            .dur_us
            .saturating_sub(child_us.get(&e.span_id).copied().unwrap_or(0));

        // Walk to the root; guard against cycles a corrupt document could
        // encode by bounding the walk at the document size.
        let mut stack = vec![e.name.as_str()];
        let mut cursor = e.parent_id;
        for _ in 0..events.len() {
            let Some(parent) = (cursor != 0).then(|| by_id.get(&cursor)).flatten() else {
                break;
            };
            stack.push(parent.name.as_str());
            cursor = parent.parent_id;
        }
        stack.reverse();
        *paths.entry(stack.join(";")).or_insert(0) += self_us;

        let slot = by_name.entry(e.name.as_str()).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += e.dur_us;
        slot.2 += self_us;
    }

    let mut by_name: Vec<(String, u64, u64, u64)> = by_name
        .into_iter()
        .map(|(name, (count, total, selfy))| (name.to_string(), count, total, selfy))
        .collect();
    by_name.sort_by(|a, b| b.3.cmp(&a.3).then(a.0.cmp(&b.0)));
    Profile {
        paths: paths.into_iter().collect(),
        by_name,
    }
}

impl Profile {
    /// Folded-stack rendering (`path;to;span N` per line) — pipe into any
    /// flamegraph renderer.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, self_us) in &self.paths {
            let _ = writeln!(out, "{path} {self_us}");
        }
        out
    }

    /// Self-time table by span name, hottest first.
    pub fn self_time_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12}",
            "span", "count", "total_us", "self_us"
        );
        for (name, count, total_us, self_us) in &self.by_name {
            let _ = writeln!(out, "{name:<40} {count:>8} {total_us:>12} {self_us:>12}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> String {
        // Shape: request(100µs) -> eval(80µs) -> {solve(30µs), solve(20µs)};
        // plus one span from another trace and one orphan.
        let events = [
            r#"{"name":"serve.request","cat":"gsu","ph":"X","ts":0,"dur":100,"pid":1,"tid":1,"args":{"trace_id":"00000000000000aa","span_id":1,"parent_id":0}}"#,
            r#"{"name":"serve.eval","cat":"gsu","ph":"X","ts":5,"dur":80,"pid":1,"tid":1,"args":{"trace_id":"00000000000000aa","span_id":2,"parent_id":1}}"#,
            r#"{"name":"markov.solve.expm","cat":"gsu","ph":"X","ts":10,"dur":30,"pid":1,"tid":2,"args":{"trace_id":"00000000000000aa","span_id":3,"parent_id":2,"solve.method":"expm"}}"#,
            r#"{"name":"markov.solve.expm","cat":"gsu","ph":"X","ts":50,"dur":20,"pid":1,"tid":3,"args":{"trace_id":"00000000000000aa","span_id":4,"parent_id":2}}"#,
            r#"{"name":"other.trace","cat":"gsu","ph":"X","ts":0,"dur":7,"pid":1,"tid":1,"args":{"trace_id":"00000000000000bb","span_id":9,"parent_id":0}}"#,
            r#"{"name":"orphan","cat":"gsu","ph":"X","ts":0,"dur":5,"pid":1,"tid":1,"args":{"trace_id":"00000000000000aa","span_id":12,"parent_id":999}}"#,
        ];
        format!(
            "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
            events.join(",")
        )
    }

    #[test]
    fn parses_own_collector_format() {
        let events = parse_chrome_trace(&doc());
        assert_eq!(events.len(), 6);
        assert_eq!(events[0].name, "serve.request");
        assert_eq!(events[0].span_id, 1);
        assert_eq!(events[2].parent_id, 2);
        assert_eq!(events[4].trace_id, "00000000000000bb");
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let profile = build_profile(&parse_chrome_trace(&doc()));
        let folded = profile.folded();
        // request: 100 - 80 = 20; eval: 80 - (30 + 20) = 30; leaves keep all.
        assert!(folded.contains("serve.request 20\n"), "{folded}");
        assert!(folded.contains("serve.request;serve.eval 30\n"), "{folded}");
        assert!(
            folded.contains("serve.request;serve.eval;markov.solve.expm 50\n"),
            "{folded}"
        );
        // The orphan roots at itself instead of disappearing.
        assert!(folded.contains("orphan 5\n"), "{folded}");

        let table = profile.self_time_table();
        let expm_row = table
            .lines()
            .find(|l| l.starts_with("markov.solve.expm"))
            .expect("expm row");
        let cols: Vec<&str> = expm_row.split_whitespace().collect();
        assert_eq!(cols[1..], ["2", "50", "50"], "{table}");
    }

    #[test]
    fn concurrent_children_saturate_instead_of_underflowing() {
        let doc = r#"{"traceEvents":[
            {"name":"parent","ph":"X","ts":0,"dur":10,"args":{"trace_id":"0000000000000001","span_id":1,"parent_id":0}},
            {"name":"fanout","ph":"X","ts":0,"dur":9,"args":{"trace_id":"0000000000000001","span_id":2,"parent_id":1}},
            {"name":"fanout","ph":"X","ts":0,"dur":9,"args":{"trace_id":"0000000000000001","span_id":3,"parent_id":1}}]}"#;
        let profile = build_profile(&parse_chrome_trace(doc));
        assert!(
            profile.folded().contains("parent 0\n"),
            "{}",
            profile.folded()
        );
    }

    #[test]
    fn foreign_documents_yield_no_events() {
        // Events without span ids (a trace from some other tool) are skipped.
        let doc = r#"{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":3,"args":{}}]}"#;
        assert!(parse_chrome_trace(doc).is_empty());
    }
}
