//! Ablation of the `∫τh` reward structure and the γ policy (DESIGN.md
//! "Resolved interpretation points" 1–2).
//!
//! The paper's Table 1 computes the "mean time to error detection" with a
//! reward structure that also accumulates over sample paths that never
//! detect (censoring at φ). This experiment compares, across φ:
//!
//! * the Table-1 measure vs the exact truncated moment
//!   `E[τ·1{τ ≤ φ}]` (first-passage analysis);
//! * `Y(φ)` under the paper's γ policy (Table-1 measure, constant), the
//!   exact-conditional-mean γ, and the simulator's per-path γ(τ).
//!
//! Headline: only the paper's policy produces the published interior
//! optimum at φ = 7000; the exact variants peak later and higher.

use gsu_bench::{banner, Curve};
use mdcd_sim::estimate_y;
use performability::{GammaPolicy, GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    banner(
        "ablation: ∫τh censoring & γ policy",
        "Table-1 reward structure vs exact first-passage moments (θ=10000)",
    );
    let params = GsuParams::paper_baseline();
    let paper = GsuAnalysis::new(params)?;
    let exact =
        GsuAnalysis::new(params)?.with_gamma_policy(GammaPolicy::ExactMeanDetectionFraction);

    println!(
        "{:>8} {:>14} {:>14} {:>10} | {:>10} {:>10} {:>12}",
        "phi", "∫τh (Table1)", "E[τ·1{τ≤φ}]", "excess", "Y paper-γ", "Y exact-γ", "Y sim γ/path"
    );
    for phi in [1000.0, 3000.0, 5000.0, 7000.0, 9000.0, 10_000.0] {
        let m = paper.measures(phi)?;
        let y_paper = paper.evaluate(phi)?.y;
        let y_exact = exact.evaluate(phi)?.y;
        let y_path = estimate_y(params, phi, 3000, 31)?.y;
        println!(
            "{phi:>8} {:>14.1} {:>14.1} {:>10.1} | {y_paper:>10.4} {y_exact:>10.4} {y_path:>12.4}",
            m.i_tau_h,
            m.i_tau_h_exact,
            m.tau_censoring_excess(),
        );
    }

    let best_paper = Curve::sweep("paper", &paper, 20)?;
    let best_exact = Curve::sweep("exact", &exact, 20)?;
    let bp = best_paper.best().expect("swept curve is non-empty");
    let be = best_exact.best().expect("swept curve is non-empty");
    println!(
        "\noptima: paper-γ at φ = {} (Y = {:.4}); exact-γ at φ = {} (Y = {:.4})",
        bp.phi, bp.y, be.phi, be.y
    );
    println!("(the paper's published optimum of 7000 emerges only under its own γ reading)");
    Ok(())
}
