//! Generates a complete markdown analysis report for one parameter set —
//! the "give me everything" entry point: parameters, derived overhead,
//! constituent measures at the optimum, the full sweep, sensitivity
//! tornado, and a simulation cross-check. Written to
//! `results/analysis_report.md`.

use std::fmt::Write as _;

use mdcd_sim::estimate_y;
use performability::report::{markdown, ReportOptions};
use performability::sensitivity::local_sensitivity;
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Analysis report",
        "Full markdown report for the Table 3 baseline",
    );
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params)?;
    let best = analysis.optimal_phi(10, 16)?;
    let sens = local_sensitivity(params, best.phi, 0.10)?;
    let sim = estimate_y(params, best.phi, 3000, 1234)?;

    // Core report from the library, then the bench-only appendices
    // (sensitivity + simulation cross-check).
    let mut md = markdown(&analysis, &ReportOptions::default())?;

    let _ = writeln!(md, "\n## Sensitivity (±10%)\n");
    let _ = writeln!(md, "| parameter | base | Y(−) | Y(+) | elasticity |");
    let _ = writeln!(md, "|---|---|---|---|---|");
    for s in &sens {
        let _ = writeln!(
            md,
            "| {} | {:.3e} | {:.4} | {:.4} | {:+.3} |",
            s.name, s.base_value, s.y_low, s.y_high, s.elasticity
        );
    }

    let _ = writeln!(md, "\n## Simulation cross-check\n");
    let _ = writeln!(
        md,
        "Monte-Carlo (hybrid engine, {} replications, per-path γ): \
         Y = {:.4} ± {:.4}; sample-path classes S1/S2/S3 = {:.3}/{:.3}/{:.3}.",
        sim.guarded.replications,
        sim.y,
        sim.half_width_95,
        sim.guarded.p_s1,
        sim.guarded.p_s2,
        sim.guarded.p_s3
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/analysis_report.md", &md)?;
    println!("{md}");
    println!("wrote results/analysis_report.md");
    Ok(())
}
