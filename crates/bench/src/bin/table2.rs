//! Regenerates **Table 2** of the paper: the `1 − ρ1` and `1 − ρ2`
//! steady-state reward structures in `RMGp`, solved for both overhead
//! settings used in the evaluation (α = β = 6000 and α = β = 2500).

use performability::{gsu::rmgp, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Table 2",
        "Constituent measures and SAN reward structures in RMGp",
    );
    println!(
        "{:<10} {:<30} Predicate-rate pair",
        "Measure", "Reward type"
    );
    println!("{}", "-".repeat(110));
    println!(
        "{:<10} {:<30} MARK(P1nExt)==1 -> 1",
        "1 − ρ1", "steady-state instant-of-time"
    );
    println!(
        "{:<10} {:<30} (MARK(P1nInt)==1 && MARK(P2DB)==0) || (MARK(P2Ext)==1 && MARK(P2DB)==1) -> 1",
        "1 − ρ2", "steady-state instant-of-time"
    );

    println!("\nSolved values (paper reports ρ1/ρ2 = 0.98/0.95 and 0.95/0.90):");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>8} {:>8}",
        "α", "β", "1-ρ1", "1-ρ2", "ρ1", "ρ2"
    );
    for (alpha, beta) in [(6000.0, 6000.0), (2500.0, 2500.0)] {
        let params = GsuParams::paper_baseline().with_overhead_rates(alpha, beta)?;
        let (rho1, rho2) = rmgp::solve_rho(&params)?;
        println!(
            "{alpha:>8} {beta:>8} {:>10.5} {:>10.5} {:>8.4} {:>8.4}",
            1.0 - rho1,
            1.0 - rho2,
            rho1,
            rho2
        );
    }
    Ok(())
}
