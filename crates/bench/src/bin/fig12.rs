//! Regenerates **Figure 12** of the paper: the effect of the
//! fault-manifestation rate on the optimal guarded-operation duration for a
//! shorter mission window (θ = 5000 h).
//!
//! Paper result: the optima drop to 2500 h (µ_new = 10⁻⁴) and 2000 h
//! (µ_new = 0.5·10⁻⁴), and Y falls off faster after its maximum than in the
//! θ = 10000 study — a shorter exposure window favours ending the guard
//! earlier.

use gsu_bench::{
    ascii_chart, banner, curve_table, write_csv, BenchTimer, Curve, ExperimentArgs,
    TelemetrySession,
};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figure 12",
        "Effect of fault-manifestation rate on optimal G-OP duration (θ=5000)",
    );
    let args = ExperimentArgs::parse(10);
    let _telemetry = TelemetrySession::new(&args.out_dir);
    let _bench = BenchTimer::start("fig12", args.steps, &args.out_dir);
    let base = GsuParams::paper_baseline().with_theta(5000.0)?;
    let fast = GsuAnalysis::new(base)?;
    let slow = GsuAnalysis::new(base.with_mu_new(5e-5)?)?;
    let curves = Curve::sweep_many(
        &[("µnew = 0.0001", &fast), ("µnew = 0.00005", &slow)],
        args.steps,
    )?;

    println!("{}", curve_table(&curves));
    println!("{}", ascii_chart(&curves, 18));
    for c in &curves {
        let b = c.best().expect("swept curve is non-empty");
        println!(
            "{}: optimal φ = {} with Y = {:.4}  (paper: 2500 / 2000)",
            c.label, b.phi, b.y
        );
    }
    write_csv(&args.csv_path("fig12.csv"), &curves)?;
    println!("\nwrote {}", args.csv_path("fig12.csv").display());
    Ok(())
}
