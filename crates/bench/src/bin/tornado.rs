//! Parameter-sensitivity tornado for `Y(φ*)` — the systematic version of
//! the paper's one-at-a-time §6 sensitivity studies.

use performability::sensitivity::{local_sensitivity, tornado_table};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("results");
    let _telemetry = gsu_bench::TelemetrySession::new(out_dir);
    let _bench = gsu_bench::BenchTimer::start("tornado", 10, out_dir);
    gsu_bench::banner(
        "Sensitivity tornado",
        "Elasticity of Y at the optimal φ, ±10% parameter perturbations",
    );
    let params = GsuParams::paper_baseline();
    let best = GsuAnalysis::new(params)?.optimal_phi(10, 12)?;
    println!(
        "baseline optimum: φ* = {:.0}, Y = {:.4}\n",
        best.phi, best.y
    );

    let sens = local_sensitivity(params, best.phi, 0.10)?;
    println!("{}", tornado_table(&sens));

    println!("Reading: positive elasticity = increasing the parameter increases Y.");
    println!("The paper's §6 findings appear quantitatively: coverage c and the");
    println!("fault-manifestation rate µnew dominate; µold is irrelevant; the");
    println!("safeguard completion rates matter only through ρ1/ρ2.");
    Ok(())
}
