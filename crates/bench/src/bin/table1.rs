//! Regenerates **Table 1** of the paper: the constituent measures solved in
//! `RMGd` and their SAN reward structures, with the values obtained at the
//! Table 3 baseline.

use performability::{gsu::rmgd, GsuAnalysis, GsuParams};
use san::{Analyzer, RewardSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Table 1",
        "Constituent measures and SAN reward structures in RMGd",
    );
    let params = GsuParams::paper_baseline();
    let model = rmgd::build(&params)?;
    let analyzer = Analyzer::generate(&model.model, &Default::default())?;
    let p = model.places;

    println!(
        "RMGd state space: {} tangible states\n",
        analyzer.state_space().n_states()
    );
    println!(
        "{:<24} {:<34} {:<46} {:>12}",
        "Measure", "Reward type", "Predicate-rate pair", "value@φ=7000"
    );
    println!("{}", "-".repeat(120));

    let phi = 7000.0;

    let i_h = analyzer.probability_at(phi, |mk| p.in_a3(mk))?;
    println!(
        "{:<24} {:<34} {:<46} {:>12.6}",
        "∫₀^φ h(τ)dτ", "instant-of-time at φ", "MARK(detected)==1 && MARK(failure)==0 -> 1", i_h
    );

    let spec = RewardSpec::new()
        .rate_when(move |mk| p.in_a2(mk), 1.0)
        .rate_when(move |mk| p.in_a4(mk), -1.0);
    let i_tau_h = analyzer.accumulated_reward(&spec, phi)?;
    println!(
        "{:<24} {:<34} {:<46} {:>12.4}",
        "∫₀^φ τh(τ)dτ",
        "accumulated over [0, φ]",
        "MARK(detected)==0 -> 1 ; ... && failure==1 -> -1",
        i_tau_h
    );

    let i_hf = analyzer.probability_at(phi, |mk| p.detected_then_failed(mk))?;
    println!(
        "{:<24} {:<34} {:<46} {:>12.4e}",
        "∫₀^φ∫_τ^φ h·f dx dτ",
        "instant-of-time at φ",
        "MARK(detected)==1 && MARK(failure)==1 -> 1",
        i_hf
    );

    let a1 = analyzer.probability_at(phi, |mk| p.in_a1(mk))?;
    println!(
        "{:<24} {:<34} {:<46} {:>12.6}",
        "P(X'_φ ∈ A'1)", "instant-of-time at φ", "MARK(detected)==0 && MARK(failure)==0 -> 1", a1
    );

    println!("\nFull constituent-measure vector through the pipeline at φ = 7000:");
    let analysis = GsuAnalysis::new(params)?;
    println!("{}", analysis.measures(phi)?);
    Ok(())
}
