//! Regenerates the **§6 low-coverage experiments** described in the text
//! after Figure 11:
//!
//! * c = 0.20: the best Y is ≈1.06 (at φ = 4000) — "too insignificant to
//!   justify the use of guarded operations of any length";
//! * c = 0.10: Y < 1 for any φ in (0, θ] and decreasing in φ — guarded
//!   operation is not worthwhile at all.

use gsu_bench::{banner, curve_table, write_csv, Curve};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    banner(
        "§6 low-coverage study",
        "Guarded operation under very low AT coverage (θ=10000, α=β=2500)",
    );
    let base = GsuParams::paper_baseline().with_overhead_rates(2500.0, 2500.0)?;
    let mut curves = Vec::new();
    for c in [0.20, 0.10] {
        let analysis = GsuAnalysis::new(base.with_coverage(c)?)?;
        curves.push(Curve::sweep(format!("c = {c:.2}"), &analysis, 20)?);
    }
    println!("{}", curve_table(&curves));

    let b20 = curves[0].best().expect("swept curve is non-empty");
    println!(
        "c = 0.20: max Y = {:.4} at φ = {} (paper: ≈1.06 at 4000 — benefit insignificant)",
        b20.y, b20.phi
    );
    let c10 = &curves[1];
    let b10 = c10.best().expect("swept curve is non-empty");
    let decreasing_tail = c10
        .points
        .windows(2)
        .filter(|w| w[0].phi >= b10.phi)
        .all(|w| w[1].y <= w[0].y + 1e-9);
    let below_one_late = c10
        .points
        .iter()
        .filter(|p| p.phi >= 4000.0)
        .all(|p| p.y < 1.0);
    println!(
        "c = 0.10: max Y = {:.4}; Y < 1 for φ ≥ 4000: {}; decreasing past the max: {}",
        b10.y, below_one_late, decreasing_tail
    );
    println!("(paper: Y < 1 and decreasing — G-OP not worthwhile at c = 0.10)");
    write_csv(std::path::Path::new("results/lowcov.csv"), &curves)?;
    println!("\nwrote results/lowcov.csv");
    Ok(())
}
