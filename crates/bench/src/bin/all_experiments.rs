//! Runs every table- and figure-regeneration experiment in sequence and
//! writes all CSV outputs under `results/` — the one-shot reproduction of
//! the paper's evaluation section. Equivalent to running the individual
//! binaries (`table1`–`table3`, `fig9`–`fig12`, `lowcov`, `validate_sim`).

use std::process::Command;

fn main() {
    let binaries = [
        "table3",
        "table1",
        "table2",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "lowcov",
        "ablation_tau",
        "tornado",
        "export_dot",
        "worth_distribution",
        "report",
        "validate_sim",
    ];
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory");
    let mut failures = Vec::new();
    for bin in binaries {
        let path = dir.join(bin);
        println!();
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(bin);
            }
            Err(e) => {
                eprintln!("failed to launch {bin} ({e}); build it with `cargo build -p gsu-bench --release`");
                failures.push(bin);
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nAll experiments completed; CSVs in results/.");
}
