//! Regenerates **Figure 11** of the paper: the effect of acceptance-test
//! coverage on the optimal guarded-operation duration (θ = 10000 h,
//! α = β = 2500).
//!
//! Paper result: the optimal φ stays at 6000 h as c drops from 0.95 to 0.50,
//! while the maximum Y collapses from ≈1.45 to ≈1.15 — the optimum is
//! insensitive to c but the *benefit* is very sensitive to it.

use gsu_bench::{
    ascii_chart, banner, curve_table, write_csv, BenchTimer, Curve, ExperimentArgs,
    TelemetrySession,
};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figure 11",
        "Effect of AT coverage on optimal G-OP duration (θ=10000)",
    );
    let args = ExperimentArgs::parse(10);
    let _telemetry = TelemetrySession::new(&args.out_dir);
    let _bench = BenchTimer::start("fig11", args.steps, &args.out_dir);
    let base = GsuParams::paper_baseline().with_overhead_rates(2500.0, 2500.0)?;
    let coverages = [0.95, 0.75, 0.50];
    let mut analyses = Vec::new();
    for c in coverages {
        analyses.push((
            format!("c = {c:.2}"),
            GsuAnalysis::new(base.with_coverage(c)?)?,
        ));
    }
    let entries: Vec<(&str, &GsuAnalysis)> = analyses
        .iter()
        .map(|(label, analysis)| (label.as_str(), analysis))
        .collect();
    let curves = Curve::sweep_many(&entries, args.steps)?;

    println!("{}", curve_table(&curves));
    println!("{}", ascii_chart(&curves, 18));
    for c in &curves {
        let b = c.best().expect("swept curve is non-empty");
        println!("{}: optimal φ = {} with max Y = {:.4}", c.label, b.phi, b.y);
    }
    println!("(paper: optimum stays at 6000 for all three; max Y ≈ 1.45 → ≈1.15)");
    write_csv(&args.csv_path("fig11.csv"), &curves)?;
    println!("\nwrote {}", args.csv_path("fig11.csv").display());
    Ok(())
}
