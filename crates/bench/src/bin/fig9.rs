//! Regenerates **Figure 9** of the paper: the effect of the
//! fault-manifestation rate µ_new on the optimal guarded-operation duration
//! (θ = 10000 h).
//!
//! Paper result: optimal φ = 7000 for µ_new = 10⁻⁴ and 5000 for
//! µ_new = 0.5·10⁻⁴; maximum Y ≈ 1.47 / ≈ 1.30.

use gsu_bench::{
    ascii_chart, banner, curve_table, write_csv, BenchTimer, Curve, ExperimentArgs,
    TelemetrySession,
};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figure 9",
        "Effect of fault-manifestation rate on optimal G-OP duration (θ=10000)",
    );
    let args = ExperimentArgs::parse(10);
    let _telemetry = TelemetrySession::new(&args.out_dir);
    let _bench = BenchTimer::start("fig9", args.steps, &args.out_dir);
    let base = GsuParams::paper_baseline();
    let fast = GsuAnalysis::new(base)?;
    let slow = GsuAnalysis::new(base.with_mu_new(5e-5)?)?;
    let curves = Curve::sweep_many(
        &[("µnew = 0.0001", &fast), ("µnew = 0.00005", &slow)],
        args.steps,
    )?;

    println!("{}", curve_table(&curves));
    println!("{}", ascii_chart(&curves, 18));
    for c in &curves {
        let b = c.best().expect("swept curve is non-empty");
        println!(
            "{}: optimal φ = {} with Y = {:.4}  (paper: 7000 / 5000)",
            c.label, b.phi, b.y
        );
    }
    write_csv(&args.csv_path("fig9.csv"), &curves)?;
    println!("\nwrote {}", args.csv_path("fig9.csv").display());
    Ok(())
}
