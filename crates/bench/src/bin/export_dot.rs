//! Exports the three GSU SAN reward models (paper Figures 6–8) and their
//! tangible state spaces as Graphviz DOT files under `results/` — the
//! renderable counterparts of the paper's model diagrams.

use performability::gsu::{rmgd, rmgp, rmnd};
use performability::GsuParams;
use san::{dot, StateSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Model export",
        "GSU SAN models (Figs. 6-8) and state spaces as Graphviz DOT",
    );
    let params = GsuParams::paper_baseline();
    std::fs::create_dir_all("results")?;

    let rmgd = rmgd::build(&params)?;
    let rmgp = rmgp::build(&params)?;
    let rmnd = rmnd::build(&params, params.mu_new)?;

    for (name, model) in [
        ("rmgd", &rmgd.model),
        ("rmgp", &rmgp.model),
        ("rmnd", &rmnd.model),
    ] {
        let model_path = format!("results/{name}_model.dot");
        std::fs::write(&model_path, dot::model_to_dot(model))?;
        let space = StateSpace::generate(model, &Default::default())?;
        let space_path = format!("results/{name}_states.dot");
        std::fs::write(&space_path, dot::state_space_to_dot(&space))?;
        println!(
            "{name}: {} places, {} activities, {} tangible states -> {model_path}, {space_path}",
            model.n_places(),
            model.n_activities(),
            space.n_states()
        );
    }
    println!("\nrender with e.g.: dot -Tsvg results/rmgd_model.dot -o rmgd.svg");
    Ok(())
}
