//! Regenerates **Table 3** of the paper: the parameter value assignment.

use performability::GsuParams;

fn main() {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner("Table 3", "Parameter value assignment (times in hours)");
    let p = GsuParams::paper_baseline();
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>6} {:>6} {:>8} {:>8}",
        "θ", "λ", "µnew", "µold", "c", "pext", "α", "β"
    );
    println!(
        "{:>8} {:>8} {:>10.0e} {:>10.0e} {:>6} {:>6} {:>8} {:>8}",
        p.theta, p.lambda, p.mu_new, p.mu_old, p.coverage, p.p_ext, p.alpha, p.beta
    );
    println!();
    println!("Interpretation:");
    println!(
        "  λ = {} per hour  => one message every {:.1} s per process",
        p.lambda,
        3600.0 / p.lambda
    );
    println!(
        "  α = β = {} per hour => AT / checkpoint completion in {:.0} ms",
        p.alpha,
        3.6e6 / p.alpha
    );
    println!(
        "  µnew = {:.0e} per hour => mean time to fault manifestation {:.0} h",
        p.mu_new,
        1.0 / p.mu_new
    );
}
