//! `gsu-bench`: harness utilities as a CLI. Four subcommands:
//!
//! ```text
//! gsu-bench regress [--baseline PATH] [--current PATH]
//!                   [--threshold FRACTION] [--no-update] [--allow-missing]
//! gsu-bench profile --trace PATH [--folded | --table]
//! gsu-bench scenarios [--dir PATH] [--golden PATH] [--out PATH]
//!                     [--write-golden | --check]
//! gsu-bench loadgen [--addr HOST:PORT] [--mode open|closed] [--rate RPS]
//!                   [--duration SECONDS] [--connections N] [--seed N]
//!                   [--no-keepalive] [--label NAME] [--slo PATH]
//!                   [--scenarios PATH] [--report PATH] [--bench PATH]
//!                   [--check]
//! ```
//!
//! `regress` compares the current `BENCH_sweep.json` against the committed
//! baseline — wall time *and* deterministic work metrics — and exits 0 on
//! pass, 1 on regression or on a baseline entry missing from the current log
//! (`--allow-missing` downgrades the latter to a note), and 2 on usage or
//! I/O errors. See [`gsu_bench::regress`] for the gate semantics.
//!
//! `profile` rebuilds the span tree of a Chrome trace written by a
//! `GSU_TELEMETRY=1` run (or fetched from `gsu-serve /trace?id=`) and prints
//! folded flamegraph stacks plus a per-span self-time table; see
//! [`gsu_bench::profile`].
//!
//! `scenarios` sweeps the `.gsu` catalog through the analytic pipeline and
//! checks (or regenerates with `--write-golden`) the committed golden Y(φ)
//! curves, leaving per-scenario `BenchRecord`s for the regress gate; see
//! [`gsu_bench::scenarios`].
//!
//! `loadgen` drives a live `gsu-serve` with a seeded workload mix over
//! persistent connections, writes a `gsu-loadgen-v1` latency report plus
//! `serve:*` bench records, and with `--check` gates the run against the
//! committed `results/SLO.json`; see [`gsu_bench::loadgen`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

use gsu_bench::regress::{RegressConfig, DEFAULT_THRESHOLD};

const USAGE: &str = "usage: gsu-bench regress [--baseline PATH] [--current PATH] \
                     [--threshold FRACTION] [--no-update] [--allow-missing]\n  \
                     | gsu-bench profile --trace PATH [--folded | --table]\n  \
                     | gsu-bench scenarios [--dir PATH] [--golden PATH] [--out PATH] \
                     [--write-golden | --check]\n  \
                     | gsu-bench loadgen [--addr HOST:PORT] [--mode open|closed] \
                     [--rate RPS] [--duration SECONDS] [--connections N] [--seed N] \
                     [--no-keepalive] [--label NAME] [--slo PATH] [--scenarios PATH] \
                     [--report PATH] [--bench PATH] [--check]";

fn main() -> ExitCode {
    telemetry::init_log_from_env("GSU_LOG");
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("regress") => regress(args),
        Some("profile") => profile(args),
        Some("scenarios") => scenarios(args),
        Some("loadgen") => loadgen(args),
        Some("--help") | Some("-h") | None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Some(other) => {
            eprintln!("gsu-bench: unknown subcommand {other:?}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn profile(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut trace: Option<std::path::PathBuf> = None;
    let mut folded = true;
    let mut table = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace" => match args.next() {
                Some(path) => trace = Some(path.into()),
                None => return usage("--trace needs a path"),
            },
            "--folded" => table = false,
            "--table" => folded = false,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(trace) = trace else {
        return usage("profile needs --trace PATH");
    };
    let doc = match std::fs::read_to_string(&trace) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("gsu-bench profile: cannot read {}: {e}", trace.display());
            return ExitCode::from(2);
        }
    };
    let events = gsu_bench::profile::parse_chrome_trace(&doc);
    if events.is_empty() {
        eprintln!(
            "gsu-bench profile: no span events with trace/span ids in {}",
            trace.display()
        );
        return ExitCode::FAILURE;
    }
    let profile = gsu_bench::profile::build_profile(&events);
    if folded {
        print!("{}", profile.folded());
    }
    if table {
        if folded {
            println!();
        }
        print!("{}", profile.self_time_table());
    }
    ExitCode::SUCCESS
}

fn regress(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut config = RegressConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(path) => config.baseline = path.into(),
                None => return usage("--baseline needs a path"),
            },
            "--current" => match args.next() {
                Some(path) => config.current = path.into(),
                None => return usage("--current needs a path"),
            },
            "--threshold" => match args.next().and_then(|raw| raw.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => config.threshold = t,
                _ => return usage("--threshold needs a non-negative fraction (e.g. 0.10)"),
            },
            "--no-update" => config.update = false,
            "--allow-missing" => config.allow_missing = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if config.threshold == DEFAULT_THRESHOLD && std::env::var("GSU_REGRESS_THRESHOLD").is_ok() {
        match std::env::var("GSU_REGRESS_THRESHOLD")
            .ok()
            .and_then(|raw| raw.parse::<f64>().ok())
        {
            Some(t) if t.is_finite() && t >= 0.0 => config.threshold = t,
            _ => return usage("GSU_REGRESS_THRESHOLD must be a non-negative fraction"),
        }
    }
    match gsu_bench::regress::run(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gsu-bench regress: {e}");
            ExitCode::from(2)
        }
    }
}

fn scenarios(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut config = gsu_bench::scenarios::ScenariosConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => match args.next() {
                Some(path) => config.dir = path.into(),
                None => return usage("--dir needs a path"),
            },
            "--golden" => match args.next() {
                Some(path) => config.golden = path.into(),
                None => return usage("--golden needs a path"),
            },
            "--out" => match args.next() {
                Some(path) => config.out = path.into(),
                None => return usage("--out needs a path"),
            },
            "--write-golden" => config.write_golden = true,
            "--check" => config.write_golden = false,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    match gsu_bench::scenarios::run(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gsu-bench scenarios: {e}");
            ExitCode::from(2)
        }
    }
}

fn loadgen(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut config = gsu_bench::loadgen::LoadgenConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--mode" => match args.next().map(|raw| gsu_bench::loadgen::Mode::parse(&raw)) {
                Some(Ok(mode)) => config.mode = mode,
                Some(Err(why)) => return usage(&why),
                None => return usage("--mode needs open|closed"),
            },
            "--rate" => match args.next().and_then(|raw| raw.parse::<f64>().ok()) {
                Some(rate) if rate.is_finite() && rate > 0.0 => config.rate = Some(rate),
                _ => return usage("--rate needs a positive requests/second value"),
            },
            "--duration" => match args.next().and_then(|raw| raw.parse::<f64>().ok()) {
                Some(s) if s.is_finite() && s > 0.0 => config.duration_s = s,
                _ => return usage("--duration needs a positive seconds value"),
            },
            "--connections" => match args.next().and_then(|raw| raw.parse::<usize>().ok()) {
                Some(n) if n >= 1 => config.connections = n,
                _ => return usage("--connections needs a count of at least 1"),
            },
            "--seed" => match args.next().and_then(|raw| raw.parse::<u64>().ok()) {
                Some(seed) => config.seed = seed,
                None => return usage("--seed needs a non-negative integer"),
            },
            "--no-keepalive" => config.keep_alive = false,
            "--label" => match args.next() {
                Some(label) => config.label = label,
                None => return usage("--label needs a name"),
            },
            "--slo" => match args.next() {
                Some(path) => config.slo_path = path.into(),
                None => return usage("--slo needs a path"),
            },
            "--scenarios" => match args.next() {
                Some(path) => config.scenarios_dir = path.into(),
                None => return usage("--scenarios needs a path"),
            },
            "--report" => match args.next() {
                Some(path) => config.report_path = Some(path.into()),
                None => return usage("--report needs a path"),
            },
            "--bench" => match args.next() {
                Some(path) => config.bench_path = Some(path.into()),
                None => return usage("--bench needs a path"),
            },
            "--check" => config.check = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    match gsu_bench::loadgen::run(&config) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("gsu-bench loadgen: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(why: &str) -> ExitCode {
    eprintln!("gsu-bench: {why}\n{USAGE}");
    ExitCode::from(2)
}
