//! Regenerates **Figure 10** of the paper: the effect of the performance
//! overhead of safeguard activities on the optimal guarded-operation
//! duration (θ = 10000 h).
//!
//! The paper compares α = β = 6000 (AT/checkpoint in 600 ms ⇒ ρ1 = 0.98,
//! ρ2 = 0.95) against α = β = 2500 (1440 ms ⇒ ρ1 = 0.95, ρ2 = 0.90); the
//! optimum moves from 7000 down to 6000 h.

use gsu_bench::{
    ascii_chart, banner, curve_table, write_csv, BenchTimer, Curve, ExperimentArgs,
    TelemetrySession,
};
use performability::{GsuAnalysis, GsuParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    banner(
        "Figure 10",
        "Effect of performance overhead on optimal G-OP duration (θ=10000)",
    );
    let args = ExperimentArgs::parse(10);
    let _telemetry = TelemetrySession::new(&args.out_dir);
    let _bench = BenchTimer::start("fig10", args.steps, &args.out_dir);
    let base = GsuParams::paper_baseline();
    let fast = GsuAnalysis::new(base)?;
    let slow = GsuAnalysis::new(base.with_overhead_rates(2500.0, 2500.0)?)?;
    println!(
        "computed overhead fractions: α=β=6000 ⇒ ρ = {:.4}/{:.4};  α=β=2500 ⇒ ρ = {:.4}/{:.4}",
        fast.rho().0,
        fast.rho().1,
        slow.rho().0,
        slow.rho().1
    );
    let curves = Curve::sweep_many(
        &[
            ("ρ1=0.98, ρ2=0.95 (α=β=6000)", &fast),
            ("ρ1=0.95, ρ2=0.90 (α=β=2500)", &slow),
        ],
        args.steps,
    )?;

    println!("{}", curve_table(&curves));
    println!("{}", ascii_chart(&curves, 18));
    for c in &curves {
        let b = c.best().expect("swept curve is non-empty");
        println!(
            "{}: optimal φ = {} with Y = {:.4}  (paper: 7000 / 6000)",
            c.label, b.phi, b.y
        );
    }
    write_csv(&args.csv_path("fig10.csv"), &curves)?;
    println!("\nwrote {}", args.csv_path("fig10.csv").display());
    Ok(())
}
