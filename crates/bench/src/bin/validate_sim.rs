//! Cross-validates the analytic model-translation pipeline against the MDCD
//! discrete-event simulator (the testbed substitute).
//!
//! Two comparisons:
//!
//! 1. **Mission scale** (Table 3 parameters): analytic `Y(φ)` versus the
//!    hybrid-engine Monte-Carlo estimate with 95% confidence half-widths.
//! 2. **Scaled-down scenario**: the event-exact engine versus the hybrid
//!    engine, validating the hybrid's timescale-separation approximations
//!    against ground truth.

use mdcd_sim::{estimate_y, EngineKind, GammaMode, MonteCarlo, SimConfig, YEstimate};
use performability::{GsuAnalysis, GsuParams};

/// Like [`estimate_y`] but applying the analytic pipeline's constant γ to
/// `S2` paths, so both pipelines use the same worth convention.
fn estimate_y_with_gamma(
    params: GsuParams,
    phi: f64,
    gamma: f64,
    replications: usize,
    seed: u64,
) -> Result<YEstimate, performability::PerfError> {
    let guarded =
        MonteCarlo::new(SimConfig::new(params, phi)?.with_gamma(GammaMode::Constant(gamma)))
            .with_replications(replications)
            .with_seed(seed)
            .run();
    let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0)?)
        .with_replications(replications)
        .with_seed(seed.wrapping_add(0x5EED))
        .run();
    let ideal = 2.0 * params.theta;
    let denom = ideal - guarded.mean_worth;
    let numer = ideal - unguarded.mean_worth;
    let y = numer / denom;
    let half_width = y
        * ((unguarded.worth_half_width_95 / numer).powi(2)
            + (guarded.worth_half_width_95 / denom).powi(2))
        .sqrt();
    Ok(YEstimate {
        y,
        half_width_95: half_width,
        guarded,
        unguarded,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Simulation validation",
        "Analytic translation pipeline vs MDCD discrete-event simulation",
    );

    // --- Part 1: mission scale. -------------------------------------------
    // Two γ conventions are compared (see DESIGN.md): the paper applies
    // γ = 1 − τ/θ as a *constant*, with τ the Table-1 "mean time to error
    // detection" measure; the simulator's natural discount is per sample
    // path, γ(τ) = 1 − τ_path/θ, which (Jensen + the uncensored mean being
    // smaller) yields a systematically higher Y. Matching the analytic
    // convention, the two pipelines agree.
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params)?;
    println!("Part 1 — paper baseline, analytic vs hybrid simulation (4000 reps):");
    println!(
        "{:>8} {:>11} {:>17} {:>10} {:>8} {:>14}",
        "phi", "Y analytic", "Y sim(γ=paper)", "95% ±", "agree?", "Y sim(γ/path)"
    );
    let mut worst: f64 = 0.0;
    for phi in [2000.0, 4000.0, 6000.0, 8000.0, 10_000.0] {
        let a = analysis.evaluate(phi)?;
        let s_paper = estimate_y_with_gamma(params, phi, a.gamma, 4000, 42)?;
        let s_path = estimate_y(params, phi, 4000, 42)?;
        let gap = (a.y - s_paper.y).abs();
        worst = worst.max(gap / a.y);
        println!(
            "{phi:>8} {:>11.4} {:>17.4} {:>10.4} {:>8} {:>14.4}",
            a.y,
            s_paper.y,
            s_paper.half_width_95,
            if gap <= s_paper.half_width_95.max(0.04 * a.y) {
                "yes"
            } else {
                "no"
            },
            s_path.y,
        );
    }
    println!(
        "worst relative gap (paper-γ convention): {:.2}%",
        worst * 100.0
    );
    println!("(residual bias: the Table-1 ∫τh reward structure counts censored paths");
    println!(" at weight φ, a documented approximation the simulator does not share)");

    // --- Part 2: exact vs hybrid at scaled parameters. ---------------------
    println!("\nPart 2 — scaled scenario (θ=50, λ=40): exact vs hybrid engine (3000 reps):");
    let small = GsuParams {
        theta: 50.0,
        lambda: 40.0,
        mu_new: 0.02,
        mu_old: 1e-7,
        coverage: 0.95,
        p_ext: 0.1,
        alpha: 200.0,
        beta: 200.0,
    };
    println!(
        "{:>8} {:>9} {:>22} {:>22}",
        "phi", "engine", "E[Wφ] (± 95%)", "P(S1)/P(S2)/P(S3)"
    );
    for phi in [15.0, 30.0, 45.0] {
        let cfg = SimConfig::new(small, phi)?;
        for (engine, name) in [(EngineKind::Exact, "exact"), (EngineKind::Hybrid, "hybrid")] {
            let s = MonteCarlo::new(cfg)
                .with_engine(engine)
                .with_replications(3000)
                .with_seed(7)
                .run();
            println!(
                "{phi:>8} {name:>9} {:>14.2} ± {:>5.2} {:>8.3}/{:.3}/{:.3}",
                s.mean_worth, s.worth_half_width_95, s.p_s1, s.p_s2, s.p_s3
            );
        }
    }
    println!("\n(The hybrid engine is the one used at mission scale, where the exact");
    println!(" engine would need ~2.4e7 events per replication.)");
    Ok(())
}
