//! Performability in Meyer's original sense (the paper's ref [4]): the
//! **distribution** of accrued mission worth `W_φ`, estimated from sample
//! paths, for the guarded-vs-unguarded decision at the baseline optimum.
//!
//! The expectation `E[W_φ]` that the translated reward variables deliver is
//! one functional of this distribution; the histogram shows what it
//! summarizes — the `S3` atom at zero, the γ-discounted `S2` band, and the
//! `S1` mass just under the ideal `2θ`.

use mdcd_sim::distribution::compare_guarded_unguarded;
use performability::GsuParams;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = gsu_bench::TelemetrySession::new(std::path::Path::new("results"));
    gsu_bench::banner(
        "Worth distribution",
        "Empirical distribution of W_φ at φ = 7000 vs unguarded (10000 reps)",
    );
    let params = GsuParams::paper_baseline();
    let (guarded, unguarded) = compare_guarded_unguarded(params, 7000.0, 10_000, 7)?;

    println!("unguarded (φ = 0):");
    println!("{}", unguarded.histogram(10));
    println!(
        "  P[W = 0] = {:.3}   median = {:.0}   mean = {:.0}",
        unguarded.zero_mass(),
        unguarded.quantile(0.5),
        unguarded.mean()
    );

    println!("\nguarded (φ = 7000):");
    println!("{}", guarded.histogram(10));
    println!(
        "  P[W = 0] = {:.3}   median = {:.0}   mean = {:.0}",
        guarded.zero_mass(),
        guarded.quantile(0.5),
        guarded.mean()
    );

    println!(
        "\n25th-percentile worth improves from {:.0} to {:.0}: the guard's value is",
        unguarded.quantile(0.25),
        guarded.quantile(0.25)
    );
    println!("exactly the removal of the catastrophic atom at zero, at a small cost");
    println!("to the best-case mass (safeguard overhead + γ discount).");
    Ok(())
}
