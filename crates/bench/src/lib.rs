//! Shared harness utilities for the figure/table regeneration binaries and
//! the Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §6 for the experiment index); this library provides the
//! common plumbing: φ grids, labelled curve sweeps, ASCII plotting for the
//! terminal, and CSV emission under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use performability::{GsuAnalysis, PerfError, SweepPoint};

pub mod loadgen;
pub mod profile;
pub mod regress;
pub mod scenarios;

/// A labelled `Y(φ)` curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (e.g. `µnew = 0.0001`).
    pub label: String,
    /// The swept points, ascending in φ.
    pub points: Vec<SweepPoint>,
}

impl Curve {
    /// Sweeps `analysis` over the standard figure grid: `steps + 1` evenly
    /// spaced φ values covering `[0, θ]` (the paper's figures use 10
    /// intervals of θ/10).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep(
        label: impl Into<String>,
        analysis: &GsuAnalysis,
        steps: usize,
    ) -> Result<Self, PerfError> {
        Ok(Curve {
            label: label.into(),
            points: analysis.sweep_grid(steps)?,
        })
    }

    /// Sweeps several analyses over their standard figure grids through
    /// **one** pool fan-out: all `(curve, φ)` evaluations become a single
    /// task list, so a wide pool stays busy across curve boundaries instead
    /// of draining at the tail of each curve. Produces exactly the curves
    /// that per-analysis [`Curve::sweep`] calls would (asserted by tests).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures (lowest curve/φ index first).
    pub fn sweep_many(
        entries: &[(&str, &GsuAnalysis)],
        steps: usize,
    ) -> Result<Vec<Curve>, PerfError> {
        let n = steps.max(1);
        let tasks: Vec<(usize, f64)> = entries
            .iter()
            .enumerate()
            .flat_map(|(ci, (_, analysis))| {
                let theta = analysis.params().theta;
                (0..=n).map(move |i| (ci, theta * i as f64 / n as f64))
            })
            .collect();
        let workers = pool::Pool::current();
        let mut span = telemetry::span("bench.sweep_many");
        span.record("curves", entries.len());
        span.record("points", tasks.len());
        span.record("threads", workers.threads());
        let points = workers.try_map_indexed(tasks, |_, (ci, phi): (usize, f64)| {
            entries[ci].1.evaluate(phi)
        })?;
        let mut out = Vec::with_capacity(entries.len());
        let mut iter = points.into_iter();
        for (label, _) in entries {
            out.push(Curve {
                label: (*label).to_string(),
                points: iter.by_ref().take(n + 1).collect(),
            });
        }
        Ok(out)
    }

    /// The point with the largest `Y`, or `None` for an empty curve.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points.iter().max_by(|a, b| a.y.total_cmp(&b.y))
    }
}

/// One record of the `BENCH_sweep.json` performance log.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Experiment binary name (e.g. `fig9`).
    pub name: String,
    /// End-to-end wall time of the run in milliseconds.
    pub wall_ms: f64,
    /// Pool width the run used (`GSU_THREADS`).
    pub threads: usize,
    /// φ grid intervals the run swept.
    pub grid: usize,
    /// Solver iterations the run performed (deterministic work metric:
    /// sweep/uniformization steps plus expm squarings; see
    /// [`telemetry::work`]). `0` in logs predating the work counters.
    pub iterations: u64,
    /// Sparse matrix-vector products the run performed. `0` in old logs.
    pub spmv_ops: u64,
}

/// Wall-clock and work guard for an experiment binary.
///
/// Construct at the top of `main`; on drop it measures the elapsed time plus
/// the [`telemetry::work`] counter deltas and merges a [`BenchRecord`] into
/// `<out_dir>/BENCH_sweep.json`, keyed on `(name, threads)` so repeated runs
/// update in place and serial/parallel numbers for the same experiment sit
/// side by side. The work deltas are deterministic (same totals regardless
/// of machine or pool width), which is what makes `gsu-bench regress` able
/// to ratchet on them without wall-clock noise.
#[derive(Debug)]
pub struct BenchTimer {
    name: String,
    grid: usize,
    path: std::path::PathBuf,
    start: std::time::Instant,
    work_start: telemetry::work::WorkSnapshot,
}

impl BenchTimer {
    /// Starts timing experiment `name` sweeping `grid` intervals, logging
    /// into `out_dir/BENCH_sweep.json`.
    pub fn start(name: impl Into<String>, grid: usize, out_dir: &Path) -> Self {
        BenchTimer {
            name: name.into(),
            grid,
            path: out_dir.join("BENCH_sweep.json"),
            start: std::time::Instant::now(),
            work_start: telemetry::work::snapshot(),
        }
    }
}

impl Drop for BenchTimer {
    fn drop(&mut self) {
        let work = telemetry::work::snapshot().delta_since(&self.work_start);
        let record = BenchRecord {
            name: self.name.clone(),
            wall_ms: self.start.elapsed().as_secs_f64() * 1e3,
            threads: pool::configured_threads(),
            grid: self.grid,
            iterations: work.solver_iterations,
            spmv_ops: work.spmv_ops,
        };
        if let Err(e) = merge_bench_record(&self.path, record) {
            eprintln!("bench: failed to update {}: {e}", self.path.display());
        }
    }
}

/// Merges `record` into the JSON log at `path`, replacing any existing entry
/// with the same `(name, threads)` key.
///
/// # Errors
///
/// Returns I/O errors from reading or writing the log.
pub fn merge_bench_record(path: &Path, record: BenchRecord) -> std::io::Result<()> {
    let mut records = read_bench_records(path).unwrap_or_default();
    match records
        .iter_mut()
        .find(|r| r.name == record.name && r.threads == record.threads)
    {
        Some(existing) => *existing = record,
        None => records.push(record),
    }
    write_bench_records(path, &records)
}

/// Reads a `BENCH_sweep.json`-format log. A missing file is an error;
/// malformed *entries* within a readable file are dropped (see
/// [`parse_bench_records`][self]).
///
/// # Errors
///
/// Returns the underlying read error (`NotFound` for an absent log).
pub fn read_bench_records(path: &Path) -> std::io::Result<Vec<BenchRecord>> {
    Ok(parse_bench_records(&std::fs::read_to_string(path)?))
}

/// Writes `records` in the `BENCH_sweep.json` format, sorted by
/// `(name, threads)`, creating parent directories as needed.
///
/// # Errors
///
/// Returns I/O errors from directory creation or the write.
pub fn write_bench_records(path: &Path, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut records: Vec<&BenchRecord> = records.iter().collect();
    records.sort_by(|a, b| a.name.cmp(&b.name).then(a.threads.cmp(&b.threads)));
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        let _ = writeln!(
            body,
            "  {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"threads\": {}, \"grid\": {}, \
             \"iterations\": {}, \"spmv_ops\": {}}}{comma}",
            r.name, r.wall_ms, r.threads, r.grid, r.iterations, r.spmv_ops
        );
    }
    body.push_str("]\n");
    std::fs::write(path, body)
}

/// Parses the records this module writes (a minimal scanner, not a general
/// JSON parser — malformed entries are dropped rather than erroring so a
/// corrupt log heals on the next run).
fn parse_bench_records(text: &str) -> Vec<BenchRecord> {
    let mut out = Vec::new();
    for chunk in text.split('{').skip(1) {
        let body = chunk.split('}').next().unwrap_or("");
        let name = json_field(body, "name").map(|v| v.trim_matches('"').to_string());
        let wall_ms = json_field(body, "wall_ms").and_then(|v| v.parse().ok());
        let threads = json_field(body, "threads").and_then(|v| v.parse().ok());
        let grid = json_field(body, "grid").and_then(|v| v.parse().ok());
        // Work metrics default to 0 so logs from before the counters existed
        // keep parsing (the regress gate treats 0 as "seed, don't compare").
        let iterations = json_field(body, "iterations")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        let spmv_ops = json_field(body, "spmv_ops")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        if let (Some(name), Some(wall_ms), Some(threads), Some(grid)) =
            (name, wall_ms, threads, grid)
        {
            out.push(BenchRecord {
                name,
                wall_ms,
                threads,
                grid,
                iterations,
                spmv_ops,
            });
        }
    }
    out
}

fn json_field<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\"");
    let rest = &body[body.find(&marker)? + marker.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = if let Some(quoted) = rest.strip_prefix('"') {
        return quoted.split('"').next().map(|v| v.trim());
    } else {
        rest.find([',', '\n']).unwrap_or(rest.len())
    };
    Some(rest[..end].trim())
}

/// Run-scoped telemetry session for the experiment binaries.
///
/// When the `GSU_TELEMETRY` environment variable is `1`, construction
/// installs a [`telemetry::Collector`] as the global sink; dropping the
/// session writes `telemetry.json` (the structured run report) and
/// `trace.json` (Chrome `trace_event` JSON, loadable in Perfetto or
/// `chrome://tracing`) into the experiment's output directory. When the
/// variable is unset or different the session is inert and every
/// instrumentation call in the pipeline stays a no-op, so output files are
/// byte-identical to an uninstrumented run.
pub struct TelemetrySession {
    collector: Option<std::sync::Arc<telemetry::Collector>>,
    out_dir: std::path::PathBuf,
}

impl TelemetrySession {
    /// Starts a session writing into `out_dir` (usually
    /// [`ExperimentArgs::out_dir`]).
    pub fn new(out_dir: &Path) -> Self {
        telemetry::init_log_from_env("GSU_LOG");
        TelemetrySession {
            collector: telemetry::init_from_env("GSU_TELEMETRY"),
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Whether telemetry collection is active for this run.
    pub fn is_active(&self) -> bool {
        self.collector.is_some()
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        let Some(collector) = self.collector.take() else {
            return;
        };
        telemetry::clear_sink();
        let report = self.out_dir.join("telemetry.json");
        let trace = self.out_dir.join("trace.json");
        match collector
            .write_run_report(&report)
            .and_then(|()| collector.write_chrome_trace(&trace))
        {
            Ok(()) => println!(
                "telemetry: wrote {} and {}",
                report.display(),
                trace.display()
            ),
            Err(e) => eprintln!("telemetry: failed to write reports: {e}"),
        }
    }
}

/// Renders curves as a fixed-width ASCII chart (φ on the x-axis, `Y` on the
/// y-axis), mirroring the paper's figure layout well enough to eyeball
/// optima in a terminal.
pub fn ascii_chart(curves: &[Curve], height: usize) -> String {
    let mut out = String::new();
    let markers = ['*', 'o', '^', '+', 'x', '#'];
    let all: Vec<&SweepPoint> = curves.iter().flat_map(|c| &c.points).collect();
    if all.is_empty() {
        return out;
    }
    let y_min = all.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let y_max = all.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-9);
    let height = height.max(4);
    let width = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);

    let mut rows = vec![vec![' '; width * 3 + 2]; height];
    for (ci, curve) in curves.iter().enumerate() {
        let marker = markers[ci % markers.len()];
        for (xi, p) in curve.points.iter().enumerate() {
            let row = ((y_max - p.y) / span * (height - 1) as f64).round() as usize;
            let col = xi * 3 + 1;
            let cell = &mut rows[row.min(height - 1)][col];
            // Overlapping curves show the later marker.
            *cell = marker;
        }
    }
    let _ = writeln!(out, "Y range [{y_min:.3}, {y_max:.3}]");
    for row in rows {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}");
    }
    let _ = writeln!(out, "+{}", "-".repeat(width * 3 + 2));
    for (ci, curve) in curves.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", markers[ci % markers.len()], curve.label);
    }
    out
}

/// Formats curves as a φ-indexed table (one row per φ, one `Y` column per
/// curve), marking each curve's optimum with `*`.
pub fn curve_table(curves: &[Curve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "phi");
    for c in curves {
        let _ = write!(out, "  {:>18}", c.label);
    }
    let _ = writeln!(out);
    let n = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    let bests: Vec<Option<f64>> = curves.iter().map(|c| c.best().map(|p| p.phi)).collect();
    for i in 0..n {
        if let Some(p0) = curves.iter().find_map(|c| c.points.get(i)) {
            let _ = write!(out, "{:>10.0}", p0.phi);
        }
        for (c, &best_phi) in curves.iter().zip(&bests) {
            match c.points.get(i) {
                Some(p) => {
                    let mark = if Some(p.phi) == best_phi { "*" } else { " " };
                    let _ = write!(out, "  {:>17.4}{mark}", p.y);
                }
                None => {
                    let _ = write!(out, "  {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes curves to a CSV file (`phi` column plus one `Y` column per curve,
/// then per-curve S1/S2/γ diagnostics).
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_csv(path: &Path, curves: &[Curve]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::new();
    let _ = write!(body, "phi");
    for c in curves {
        let label = c.label.replace(',', ";");
        let _ = write!(body, ",Y[{label}],S1[{label}],S2[{label}],gamma[{label}]");
    }
    let _ = writeln!(body);
    let n = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..n {
        if let Some(p0) = curves.iter().find_map(|c| c.points.get(i)) {
            let _ = write!(body, "{}", p0.phi);
        }
        for c in curves {
            match c.points.get(i) {
                Some(p) => {
                    let _ = write!(body, ",{},{},{},{}", p.y, p.y_s1, p.y_s2, p.gamma);
                }
                None => {
                    let _ = write!(body, ",,,,");
                }
            }
        }
        let _ = writeln!(body);
    }
    std::fs::write(path, body)
}

/// Command-line options shared by the figure-regeneration binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Number of φ grid intervals (`--steps N`; figures default to 10).
    pub steps: usize,
    /// Output directory for CSVs (`--out DIR`; default `results`).
    pub out_dir: std::path::PathBuf,
}

impl ExperimentArgs {
    /// Parses `--steps N` and `--out DIR` from the process arguments,
    /// ignoring anything else (so the binaries stay composable with cargo).
    ///
    /// # Panics
    ///
    /// Panics with a usage message when a flag is present without a valid
    /// value — the binaries are terminal tools, not a library surface.
    pub fn parse(default_steps: usize) -> Self {
        let mut args = std::env::args().skip(1);
        let mut parsed = ExperimentArgs {
            steps: default_steps,
            out_dir: std::path::PathBuf::from("results"),
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--steps" => {
                    let value = args.next().expect("--steps requires a number");
                    parsed.steps = value
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --steps value '{value}'"));
                    assert!(parsed.steps >= 1, "--steps must be >= 1");
                }
                "--out" => {
                    let value = args.next().expect("--out requires a directory");
                    parsed.out_dir = std::path::PathBuf::from(value);
                }
                other => {
                    eprintln!("(ignoring unknown argument '{other}')");
                }
            }
        }
        parsed
    }

    /// Path for a CSV file inside the output directory.
    pub fn csv_path(&self, name: &str) -> std::path::PathBuf {
        self.out_dir.join(name)
    }
}

/// Prints the standard header for an experiment binary.
pub fn banner(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::GsuParams;

    fn small_curve() -> Curve {
        let an = GsuAnalysis::with_fixed_overhead(GsuParams::paper_baseline(), 0.98, 0.95)
            .expect("baseline is valid");
        Curve::sweep("test", &an, 4).unwrap()
    }

    #[test]
    fn sweep_produces_grid() {
        let c = small_curve();
        assert_eq!(c.points.len(), 5);
        assert_eq!(c.points[0].phi, 0.0);
    }

    #[test]
    fn best_is_max_y() {
        let c = small_curve();
        let best = c.best().expect("non-empty curve has a best point");
        assert!(c.points.iter().all(|p| p.y <= best.y));
    }

    #[test]
    fn best_of_empty_curve_is_none() {
        let c = Curve {
            label: "empty".into(),
            points: Vec::new(),
        };
        assert!(c.best().is_none());
        // And an empty curve must not break the table renderer either.
        let t = curve_table(&[c]);
        assert!(t.contains("phi"));
    }

    #[test]
    fn table_marks_optimum() {
        let c = small_curve();
        let t = curve_table(&[c]);
        assert!(t.contains('*'));
        assert!(t.contains("phi"));
    }

    #[test]
    fn chart_renders_all_labels() {
        let c1 = small_curve();
        let mut c2 = small_curve();
        c2.label = "second".into();
        let chart = ascii_chart(&[c1, c2], 10);
        assert!(chart.contains("test"));
        assert!(chart.contains("second"));
        assert!(chart.contains("Y range"));
    }

    #[test]
    fn chart_of_empty_is_empty() {
        assert_eq!(ascii_chart(&[], 10), "");
    }

    #[test]
    fn sweep_many_matches_per_curve_sweeps() {
        let base = GsuParams::paper_baseline();
        let a = GsuAnalysis::with_fixed_overhead(base, 0.98, 0.95).unwrap();
        let b =
            GsuAnalysis::with_fixed_overhead(base.with_mu_new(5e-5).unwrap(), 0.98, 0.95).unwrap();
        let merged = Curve::sweep_many(&[("a", &a), ("b", &b)], 4).unwrap();
        let solo_a = Curve::sweep("a", &a, 4).unwrap();
        let solo_b = Curve::sweep("b", &b, 4).unwrap();
        assert_eq!(merged.len(), 2);
        for (merged, solo) in merged.iter().zip([&solo_a, &solo_b]) {
            assert_eq!(merged.label, solo.label);
            assert_eq!(merged.points.len(), solo.points.len());
            for (p, q) in merged.points.iter().zip(&solo.points) {
                assert_eq!(p.phi.to_bits(), q.phi.to_bits());
                assert_eq!(p.y.to_bits(), q.y.to_bits());
            }
        }
    }

    #[test]
    fn bench_records_merge_and_roundtrip() {
        let dir = std::env::temp_dir().join("gsu-bench-records-test");
        let path = dir.join("BENCH_sweep.json");
        std::fs::remove_file(&path).ok();
        let rec = |name: &str, wall_ms: f64, threads: usize| BenchRecord {
            name: name.to_string(),
            wall_ms,
            threads,
            grid: 10,
            iterations: 128,
            spmv_ops: 640,
        };
        merge_bench_record(&path, rec("fig9", 250.0, 1)).unwrap();
        merge_bench_record(&path, rec("fig9", 80.0, 4)).unwrap();
        merge_bench_record(&path, rec("fig10", 410.5, 1)).unwrap();
        // Same (name, threads) key updates in place.
        merge_bench_record(&path, rec("fig9", 245.125, 1)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let records = parse_bench_records(&text);
        assert_eq!(records.len(), 3);
        assert_eq!(
            records[1],
            BenchRecord {
                name: "fig9".into(),
                wall_ms: 245.125,
                threads: 1,
                grid: 10,
                iterations: 128,
                spmv_ops: 640,
            }
        );
        assert_eq!(records[2].threads, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logs_without_work_metrics_parse_with_zeroes() {
        let old = "[\n  {\"name\": \"fig9\", \"wall_ms\": 100.000, \
                   \"threads\": 1, \"grid\": 10}\n]\n";
        let records = parse_bench_records(old);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].iterations, 0);
        assert_eq!(records[0].spmv_ops, 0);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gsu-bench-test");
        let path = dir.join("curve.csv");
        let c = small_curve();
        write_csv(&path, &[c]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("phi,"));
        assert_eq!(text.lines().count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
