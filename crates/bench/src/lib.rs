//! Shared harness utilities for the figure/table regeneration binaries and
//! the Criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §6 for the experiment index); this library provides the
//! common plumbing: φ grids, labelled curve sweeps, ASCII plotting for the
//! terminal, and CSV emission under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::Path;

use performability::{GsuAnalysis, PerfError, SweepPoint};

/// A labelled `Y(φ)` curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (e.g. `µnew = 0.0001`).
    pub label: String,
    /// The swept points, ascending in φ.
    pub points: Vec<SweepPoint>,
}

impl Curve {
    /// Sweeps `analysis` over the standard figure grid: `steps + 1` evenly
    /// spaced φ values covering `[0, θ]` (the paper's figures use 10
    /// intervals of θ/10).
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures.
    pub fn sweep(
        label: impl Into<String>,
        analysis: &GsuAnalysis,
        steps: usize,
    ) -> Result<Self, PerfError> {
        Ok(Curve {
            label: label.into(),
            points: analysis.sweep_grid(steps)?,
        })
    }

    /// The point with the largest `Y`, or `None` for an empty curve.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points.iter().max_by(|a, b| a.y.total_cmp(&b.y))
    }
}

/// Run-scoped telemetry session for the experiment binaries.
///
/// When the `GSU_TELEMETRY` environment variable is `1`, construction
/// installs a [`telemetry::Collector`] as the global sink; dropping the
/// session writes `telemetry.json` (the structured run report) and
/// `trace.json` (Chrome `trace_event` JSON, loadable in Perfetto or
/// `chrome://tracing`) into the experiment's output directory. When the
/// variable is unset or different the session is inert and every
/// instrumentation call in the pipeline stays a no-op, so output files are
/// byte-identical to an uninstrumented run.
pub struct TelemetrySession {
    collector: Option<std::sync::Arc<telemetry::Collector>>,
    out_dir: std::path::PathBuf,
}

impl TelemetrySession {
    /// Starts a session writing into `out_dir` (usually
    /// [`ExperimentArgs::out_dir`]).
    pub fn new(out_dir: &Path) -> Self {
        TelemetrySession {
            collector: telemetry::init_from_env("GSU_TELEMETRY"),
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Whether telemetry collection is active for this run.
    pub fn is_active(&self) -> bool {
        self.collector.is_some()
    }
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        let Some(collector) = self.collector.take() else {
            return;
        };
        telemetry::clear_sink();
        let report = self.out_dir.join("telemetry.json");
        let trace = self.out_dir.join("trace.json");
        match collector
            .write_run_report(&report)
            .and_then(|()| collector.write_chrome_trace(&trace))
        {
            Ok(()) => println!(
                "telemetry: wrote {} and {}",
                report.display(),
                trace.display()
            ),
            Err(e) => eprintln!("telemetry: failed to write reports: {e}"),
        }
    }
}

/// Renders curves as a fixed-width ASCII chart (φ on the x-axis, `Y` on the
/// y-axis), mirroring the paper's figure layout well enough to eyeball
/// optima in a terminal.
pub fn ascii_chart(curves: &[Curve], height: usize) -> String {
    let mut out = String::new();
    let markers = ['*', 'o', '^', '+', 'x', '#'];
    let all: Vec<&SweepPoint> = curves.iter().flat_map(|c| &c.points).collect();
    if all.is_empty() {
        return out;
    }
    let y_min = all.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
    let y_max = all.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
    let span = (y_max - y_min).max(1e-9);
    let height = height.max(4);
    let width = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);

    let mut rows = vec![vec![' '; width * 3 + 2]; height];
    for (ci, curve) in curves.iter().enumerate() {
        let marker = markers[ci % markers.len()];
        for (xi, p) in curve.points.iter().enumerate() {
            let row = ((y_max - p.y) / span * (height - 1) as f64).round() as usize;
            let col = xi * 3 + 1;
            let cell = &mut rows[row.min(height - 1)][col];
            // Overlapping curves show the later marker.
            *cell = marker;
        }
    }
    let _ = writeln!(out, "Y range [{y_min:.3}, {y_max:.3}]");
    for row in rows {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "|{line}");
    }
    let _ = writeln!(out, "+{}", "-".repeat(width * 3 + 2));
    for (ci, curve) in curves.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", markers[ci % markers.len()], curve.label);
    }
    out
}

/// Formats curves as a φ-indexed table (one row per φ, one `Y` column per
/// curve), marking each curve's optimum with `*`.
pub fn curve_table(curves: &[Curve]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{:>10}", "phi");
    for c in curves {
        let _ = write!(out, "  {:>18}", c.label);
    }
    let _ = writeln!(out);
    let n = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    let bests: Vec<Option<f64>> = curves.iter().map(|c| c.best().map(|p| p.phi)).collect();
    for i in 0..n {
        if let Some(p0) = curves.iter().find_map(|c| c.points.get(i)) {
            let _ = write!(out, "{:>10.0}", p0.phi);
        }
        for (c, &best_phi) in curves.iter().zip(&bests) {
            match c.points.get(i) {
                Some(p) => {
                    let mark = if Some(p.phi) == best_phi { "*" } else { " " };
                    let _ = write!(out, "  {:>17.4}{mark}", p.y);
                }
                None => {
                    let _ = write!(out, "  {:>18}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes curves to a CSV file (`phi` column plus one `Y` column per curve,
/// then per-curve S1/S2/γ diagnostics).
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_csv(path: &Path, curves: &[Curve]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut body = String::new();
    let _ = write!(body, "phi");
    for c in curves {
        let label = c.label.replace(',', ";");
        let _ = write!(body, ",Y[{label}],S1[{label}],S2[{label}],gamma[{label}]");
    }
    let _ = writeln!(body);
    let n = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..n {
        if let Some(p0) = curves.iter().find_map(|c| c.points.get(i)) {
            let _ = write!(body, "{}", p0.phi);
        }
        for c in curves {
            match c.points.get(i) {
                Some(p) => {
                    let _ = write!(body, ",{},{},{},{}", p.y, p.y_s1, p.y_s2, p.gamma);
                }
                None => {
                    let _ = write!(body, ",,,,");
                }
            }
        }
        let _ = writeln!(body);
    }
    std::fs::write(path, body)
}

/// Command-line options shared by the figure-regeneration binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentArgs {
    /// Number of φ grid intervals (`--steps N`; figures default to 10).
    pub steps: usize,
    /// Output directory for CSVs (`--out DIR`; default `results`).
    pub out_dir: std::path::PathBuf,
}

impl ExperimentArgs {
    /// Parses `--steps N` and `--out DIR` from the process arguments,
    /// ignoring anything else (so the binaries stay composable with cargo).
    ///
    /// # Panics
    ///
    /// Panics with a usage message when a flag is present without a valid
    /// value — the binaries are terminal tools, not a library surface.
    pub fn parse(default_steps: usize) -> Self {
        let mut args = std::env::args().skip(1);
        let mut parsed = ExperimentArgs {
            steps: default_steps,
            out_dir: std::path::PathBuf::from("results"),
        };
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--steps" => {
                    let value = args.next().expect("--steps requires a number");
                    parsed.steps = value
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --steps value '{value}'"));
                    assert!(parsed.steps >= 1, "--steps must be >= 1");
                }
                "--out" => {
                    let value = args.next().expect("--out requires a directory");
                    parsed.out_dir = std::path::PathBuf::from(value);
                }
                other => {
                    eprintln!("(ignoring unknown argument '{other}')");
                }
            }
        }
        parsed
    }

    /// Path for a CSV file inside the output directory.
    pub fn csv_path(&self, name: &str) -> std::path::PathBuf {
        self.out_dir.join(name)
    }
}

/// Prints the standard header for an experiment binary.
pub fn banner(experiment: &str, description: &str) {
    println!("==============================================================");
    println!("{experiment}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use performability::GsuParams;

    fn small_curve() -> Curve {
        let an = GsuAnalysis::with_fixed_overhead(GsuParams::paper_baseline(), 0.98, 0.95)
            .expect("baseline is valid");
        Curve::sweep("test", &an, 4).unwrap()
    }

    #[test]
    fn sweep_produces_grid() {
        let c = small_curve();
        assert_eq!(c.points.len(), 5);
        assert_eq!(c.points[0].phi, 0.0);
    }

    #[test]
    fn best_is_max_y() {
        let c = small_curve();
        let best = c.best().expect("non-empty curve has a best point");
        assert!(c.points.iter().all(|p| p.y <= best.y));
    }

    #[test]
    fn best_of_empty_curve_is_none() {
        let c = Curve {
            label: "empty".into(),
            points: Vec::new(),
        };
        assert!(c.best().is_none());
        // And an empty curve must not break the table renderer either.
        let t = curve_table(&[c]);
        assert!(t.contains("phi"));
    }

    #[test]
    fn table_marks_optimum() {
        let c = small_curve();
        let t = curve_table(&[c]);
        assert!(t.contains('*'));
        assert!(t.contains("phi"));
    }

    #[test]
    fn chart_renders_all_labels() {
        let c1 = small_curve();
        let mut c2 = small_curve();
        c2.label = "second".into();
        let chart = ascii_chart(&[c1, c2], 10);
        assert!(chart.contains("test"));
        assert!(chart.contains("second"));
        assert!(chart.contains("Y range"));
    }

    #[test]
    fn chart_of_empty_is_empty() {
        assert_eq!(ascii_chart(&[], 10), "");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gsu-bench-test");
        let path = dir.join("curve.csv");
        let c = small_curve();
        write_csv(&path, &[c]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("phi,"));
        assert_eq!(text.lines().count(), 6);
        std::fs::remove_dir_all(&dir).ok();
    }
}
