//! `gsu-bench loadgen`: a std-only load generator for a live `gsu-serve`.
//!
//! The serving path is part of the artifact: `/eval` answers Y(φ) queries,
//! and `results/SLO.json` promises how fast it does so at a pinned request
//! rate. This module drives that promise end to end — it opens persistent
//! HTTP connections ([`gsu_serve::http::HttpClient`]), replays a seeded
//! workload mix drawn from the committed scenario catalog, and reports
//! exact latency quantiles into a `gsu-loadgen-v1` JSON report plus
//! `serve:*` records for the `gsu-bench regress` ratchet.
//!
//! Two driving disciplines:
//!
//! * **Open loop** (the SLO mode): arrivals follow a seeded Poisson
//!   schedule built *before* the run ([`build_schedule`]), and each
//!   request's latency is measured from its **intended** send time, not
//!   from when the client actually got around to sending it. A slow server
//!   therefore inflates the latency of every queued-behind request instead
//!   of silently thinning the arrival rate — the standard correction for
//!   coordinated omission.
//! * **Closed loop**: `connections` workers issue requests back to back
//!   until the deadline. This measures service capacity, not SLO
//!   attainment, and is reported but never gated.
//!
//! With `--check` the run becomes a CI gate: the written report must parse
//! back, the per-endpoint attainment must meet `SLO.json`, and the
//! server's own `/stats` windowed quantiles must agree with the
//! client-measured ones to within log-bucket resolution (a unit error —
//! ms vs µs — is ~3 decades and fails loudly; honest histogram error is
//! well under the 1.5-decade tolerance).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use gsu_scenario::ast::ScenarioSpec;
use gsu_serve::http::{http_get, HttpClient};
use gsu_serve::slo::{self, SloDoc};
use mdcd_sim::SimRng;

use crate::{merge_bench_record, BenchRecord};

/// Schema tag of the JSON report this module writes.
pub const REPORT_SCHEMA: &str = "gsu-loadgen-v1";

/// Largest tolerated disagreement between a client-measured quantile and
/// the server's windowed estimate of the same quantile, in decades
/// (`|log10(server/client)|`). The window histogram's log buckets are
/// one-third of a decade wide, so honest runs land far inside this; a
/// ms-vs-µs unit slip is 3 decades and fails.
pub const STATS_AGREEMENT_DECADES: f64 = 1.5;

/// Smallest client-side sample count for which the `/stats` agreement
/// check is attempted. Below this, the server's window (which also saw
/// the unmeasured warmup requests) and the client's handful of samples
/// can have wildly different quantiles without either being wrong.
pub const STATS_AGREEMENT_MIN_SAMPLES: u64 = 10;

/// Driving discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Seeded Poisson arrivals; latency from intended send time.
    Open,
    /// Back-to-back workers until the deadline.
    Closed,
}

impl Mode {
    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Open => "open",
            Mode::Closed => "closed",
        }
    }

    /// Parses the CLI spelling.
    ///
    /// # Errors
    ///
    /// Anything other than `open` or `closed`.
    pub fn parse(raw: &str) -> Result<Mode, String> {
        match raw {
            "open" => Ok(Mode::Open),
            "closed" => Ok(Mode::Closed),
            other => Err(format!("unknown mode {other:?}: want open|closed")),
        }
    }
}

/// One planned request: the full request target and the endpoint path it
/// is accounted under (`/eval?scenario=…&phi=…` counts as `/eval`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Endpoint path the sample is attributed to.
    pub endpoint: String,
    /// Full request target including the query string.
    pub target: String,
}

/// Configuration for one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// Driving discipline.
    pub mode: Mode,
    /// Open-loop arrival rate; defaults to `SLO.json`'s pinned
    /// `rate_rps`, or 20 when no SLO document is available.
    pub rate: Option<f64>,
    /// Run length in seconds.
    pub duration_s: f64,
    /// Concurrent connections (workers).
    pub connections: usize,
    /// Workload seed: same seed, same arrival schedule and target mix.
    pub seed: u64,
    /// Reuse connections (HTTP keep-alive). `false` reconnects per
    /// request, which quantifies the keep-alive win.
    pub keep_alive: bool,
    /// Label for the `serve:{label}:{quantile}` bench records and the
    /// report; defaults to the mode name.
    pub label: String,
    /// SLO document to default the rate from and, with `check`, gate on.
    pub slo_path: PathBuf,
    /// Scenario catalog directory for the workload mix; when absent the
    /// mix degrades to plain `/eval` plus the fixed endpoints.
    pub scenarios_dir: PathBuf,
    /// Where to write the `gsu-loadgen-v1` report, if anywhere.
    pub report_path: Option<PathBuf>,
    /// Bench log to merge `serve:*` records into, if any.
    pub bench_path: Option<PathBuf>,
    /// Run the SLO + report + `/stats`-agreement checks.
    pub check: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:9184".to_string(),
            mode: Mode::Open,
            rate: None,
            duration_s: 2.0,
            connections: 2,
            seed: 42,
            keep_alive: true,
            label: String::new(),
            slo_path: PathBuf::from(slo::SLO_PATH),
            scenarios_dir: PathBuf::from(gsu_serve::SCENARIOS_DIR),
            report_path: None,
            bench_path: None,
            check: false,
        }
    }
}

/// Latency statistics for one endpoint (or the whole run).
#[derive(Debug, Clone, PartialEq)]
pub struct EndpointStats {
    /// Endpoint path (`_all` for the run-wide aggregate).
    pub endpoint: String,
    /// Requests issued, including failures.
    pub count: u64,
    /// Requests that errored or returned a non-200 status.
    pub errors: u64,
    /// Mean latency over successful requests, µs.
    pub mean_us: f64,
    /// Exact (sample, not histogram) quantiles over successful requests,
    /// µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Slowest successful request, µs.
    pub max_us: f64,
}

/// Outcome of one `--check` assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Short machine-stable name (`slo:/eval`, `stats-agreement:/eval`…).
    pub name: String,
    /// Whether the assertion held.
    pub passed: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// Everything one run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenReport {
    /// Driving discipline the run used.
    pub mode: String,
    /// Record label (`serve:{label}:{quantile}`).
    pub label: String,
    /// Planned open-loop rate (requests/second); for closed-loop runs the
    /// rate that sized the target list.
    pub rate_rps: f64,
    /// Planned run length, seconds.
    pub duration_s: f64,
    /// Concurrent connections.
    pub connections: usize,
    /// Workload seed.
    pub seed: u64,
    /// Whether connections were reused.
    pub keep_alive: bool,
    /// Requests issued, including failures.
    pub requests: u64,
    /// Requests that errored or returned non-200.
    pub errors: u64,
    /// TCP connections actually opened across all workers.
    pub connects: u64,
    /// Wall time of the measured phase, seconds.
    pub elapsed_s: f64,
    /// Successful requests per second of wall time.
    pub throughput_rps: f64,
    /// Run-wide latency aggregate.
    pub overall: EndpointStats,
    /// Per-endpoint breakdown (endpoints with at least one success).
    pub endpoints: Vec<EndpointStats>,
    /// `--check` outcomes; empty when checks were not requested.
    pub checks: Vec<Check>,
}

/// One measured request.
#[derive(Debug, Clone)]
struct Sample {
    endpoint: String,
    latency_us: f64,
    ok: bool,
}

/// Builds the seeded open-loop arrival schedule: nanosecond offsets from
/// the run start, Poisson (exponential inter-arrival) at `rate_rps`,
/// truncated at `duration_s`. The draw is a single serial stream, so the
/// schedule is byte-identical regardless of `GSU_THREADS` or pool state.
pub fn build_schedule(rate_rps: f64, duration_s: f64, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::stream(seed, 0);
    let horizon_ns = (duration_s * 1e9) as u64;
    let mut t_s = 0.0f64;
    let mut out = Vec::new();
    loop {
        t_s += rng.exp(rate_rps);
        let ns = (t_s * 1e9) as u64;
        if ns >= horizon_ns {
            return out;
        }
        out.push(ns);
    }
}

/// Builds the deterministic target mix: ~30% scenario evaluations drawn
/// from the cheap end of `catalog` with φ jittered inside `[0.3θ, 0.8θ]`,
/// ~50% plain `/eval` with φ in `[2000, 9000]`, ~10% `/metrics`, ~10%
/// `/healthz`. With an empty catalog the scenario share folds into plain
/// `/eval`. Deterministic in `seed`.
pub fn build_targets(n: usize, seed: u64, catalog: &[ScenarioSpec]) -> Vec<Target> {
    let cheap: Vec<&ScenarioSpec> = catalog
        .iter()
        .filter(|s| s.name.starts_with("paper-") || s.name == "small-exact")
        .collect();
    let mut rng = SimRng::stream(seed, 1);
    (0..n)
        .map(|_| {
            let u = rng.uniform();
            if u < 0.10 {
                Target {
                    endpoint: "/metrics".to_string(),
                    target: "/metrics".to_string(),
                }
            } else if u < 0.20 {
                Target {
                    endpoint: "/healthz".to_string(),
                    target: "/healthz".to_string(),
                }
            } else if u < 0.50 && !cheap.is_empty() {
                let idx = ((rng.uniform() * cheap.len() as f64) as usize).min(cheap.len() - 1);
                let spec = cheap[idx];
                let phi = spec.params.theta * (0.3 + 0.5 * rng.uniform());
                Target {
                    endpoint: "/eval".to_string(),
                    target: format!("/eval?scenario={}&phi={phi:.1}", spec.name),
                }
            } else {
                let phi = 2000.0 + 7000.0 * rng.uniform();
                Target {
                    endpoint: "/eval".to_string(),
                    target: format!("/eval?phi={phi:.1}"),
                }
            }
        })
        .collect()
}

/// Runs one load-generation pass against a live server.
///
/// # Errors
///
/// Unresolvable address, malformed SLO document, unreachable server
/// (warmup fails), a run with zero successful requests, report write
/// failures, or a written report that does not parse back.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    if config.connections == 0 {
        return Err("connections must be at least 1".to_string());
    }
    if !(config.duration_s > 0.0 && config.duration_s.is_finite()) {
        return Err(format!(
            "duration must be positive, got {}",
            config.duration_s
        ));
    }
    let addr: SocketAddr = config
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {}: {e}", config.addr))?
        .next()
        .ok_or_else(|| format!("{} resolves to no address", config.addr))?;

    // The SLO document pins the default open-loop rate; with --check it is
    // mandatory (a gate without a promise to gate on is meaningless).
    let slo_doc = if config.slo_path.is_file() {
        Some(slo::load_slo(&config.slo_path)?)
    } else if config.check {
        return Err(format!(
            "--check needs an SLO document at {}",
            config.slo_path.display()
        ));
    } else {
        None
    };
    let rate = match config.rate {
        Some(r) if r > 0.0 && r.is_finite() => r,
        Some(r) => return Err(format!("rate must be positive, got {r}")),
        None => slo_doc.as_ref().map_or(20.0, |d| d.rate_rps),
    };
    let label = if config.label.is_empty() {
        let suffix = if config.keep_alive {
            ""
        } else {
            "-nokeepalive"
        };
        format!("{}{suffix}", config.mode.as_str())
    } else {
        config.label.clone()
    };

    let catalog = if config.scenarios_dir.is_dir() {
        gsu_scenario::catalog::load_dir(&config.scenarios_dir)
            .map_err(|e| format!("scenario catalog: {e}"))?
    } else {
        Vec::new()
    };
    let schedule = build_schedule(rate, config.duration_s, config.seed);
    let planned = schedule.len().max(config.connections);
    let targets = build_targets(planned, config.seed, &catalog);

    warmup(addr, &targets)?;

    let (samples, connects, elapsed_s) = match config.mode {
        Mode::Open => drive_open(addr, config, &schedule, &targets),
        Mode::Closed => drive_closed(addr, config, &targets),
    };

    let requests = samples.len() as u64;
    let errors = samples.iter().filter(|s| !s.ok).count() as u64;
    let overall = stats_for("_all", &samples)
        .ok_or_else(|| format!("no successful requests ({errors} of {requests} failed)"))?;
    let mut by_endpoint: BTreeMap<&str, Vec<Sample>> = BTreeMap::new();
    for s in &samples {
        by_endpoint.entry(&s.endpoint).or_default().push(s.clone());
    }
    let endpoints: Vec<EndpointStats> = by_endpoint
        .iter()
        .filter_map(|(endpoint, group)| stats_for(endpoint, group))
        .collect();

    let ok = requests - errors;
    let mut report = LoadgenReport {
        mode: config.mode.as_str().to_string(),
        label,
        rate_rps: rate,
        duration_s: config.duration_s,
        connections: config.connections,
        seed: config.seed,
        keep_alive: config.keep_alive,
        requests,
        errors,
        connects,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            ok as f64 / elapsed_s
        } else {
            0.0
        },
        overall,
        endpoints,
        checks: Vec::new(),
    };

    if config.check {
        let doc = slo_doc
            .as_ref()
            .unwrap_or_else(|| unreachable!("--check verified the SLO document above"));
        report.checks = run_checks(addr, doc, &samples, &report);
    }

    let json = report.to_json();
    if let Some(path) = &config.report_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        std::fs::write(path, &json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        // The committed artifact must round-trip: a report nobody can parse
        // back is a malformed report, and with --check that is a failure.
        let written = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot re-read {}: {e}", path.display()))?;
        parse_report(&written).map_err(|e| format!("malformed report {}: {e}", path.display()))?;
    } else {
        parse_report(&json).map_err(|e| format!("malformed report: {e}"))?;
    }

    if let Some(path) = &config.bench_path {
        for (suffix, value_us) in [
            ("p50", report.overall.p50_us),
            ("p99", report.overall.p99_us),
            ("p999", report.overall.p999_us),
        ] {
            let record = BenchRecord {
                name: format!("serve:{}:{suffix}", report.label),
                wall_ms: value_us / 1000.0,
                threads: config.connections,
                grid: report.requests as usize,
                // Zero work metrics mean "don't ratchet on work" to the
                // regress gate — serving latency has no deterministic
                // iteration count.
                iterations: 0,
                spmv_ops: 0,
            };
            merge_bench_record(path, record)
                .map_err(|e| format!("cannot update {}: {e}", path.display()))?;
        }
    }

    Ok(report)
}

/// Issues one unmeasured request per distinct kind of target (each
/// scenario name once, plain `/eval` once, each fixed endpoint once) so
/// scenario model building and other cold-start costs land outside the
/// measured phase.
fn warmup(addr: SocketAddr, targets: &[Target]) -> Result<(), String> {
    let mut representatives: BTreeMap<String, &str> = BTreeMap::new();
    for t in targets {
        let key = match t.target.split_once("scenario=") {
            Some((_, rest)) => format!("scenario:{}", rest.split('&').next().unwrap_or(rest)),
            None => t.endpoint.clone(),
        };
        representatives.entry(key).or_insert(&t.target);
    }
    let mut client = HttpClient::new(addr, true);
    for (kind, target) in representatives {
        let (status, body) = client
            .get(target)
            .map_err(|e| format!("warmup {target} failed: {e}"))?;
        if status != 200 {
            let first = body.lines().next().unwrap_or("");
            return Err(format!("warmup {kind} ({target}) -> {status}: {first}"));
        }
    }
    Ok(())
}

/// Open-loop driver: request `i` of the schedule belongs to worker
/// `i % connections`; each worker sleeps until the intended send time and
/// measures latency **from that intended time**, so scheduling delay
/// caused by a slow server counts against the server (coordinated-
/// omission correction).
fn drive_open(
    addr: SocketAddr,
    config: &LoadgenConfig,
    schedule: &[u64],
    targets: &[Target],
) -> (Vec<Sample>, u64, f64) {
    let workers = config.connections;
    let start = Instant::now();
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mine: Vec<(u64, Target)> = schedule
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(i, &offset)| (offset, targets[i % targets.len()].clone()))
                    .collect();
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr, config.keep_alive);
                    let mut samples = Vec::with_capacity(mine.len());
                    for (offset_ns, target) in mine {
                        let intended = start + Duration::from_nanos(offset_ns);
                        if let Some(wait) = intended.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let response = client.get(&target.target);
                        let latency_us = intended.elapsed().as_secs_f64() * 1e6;
                        samples.push(Sample {
                            endpoint: target.endpoint,
                            latency_us,
                            ok: matches!(response, Ok((200, _))),
                        });
                    }
                    (samples, client.connects())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .collect::<Vec<_>>()
    });
    collect(results, start)
}

/// Closed-loop driver: each worker issues its share of the target mix
/// back to back (cycling) until the deadline; latency is plain
/// request-to-response time.
fn drive_closed(
    addr: SocketAddr,
    config: &LoadgenConfig,
    targets: &[Target],
) -> (Vec<Sample>, u64, f64) {
    let workers = config.connections;
    let start = Instant::now();
    let deadline = start + Duration::from_secs_f64(config.duration_s);
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let mine: Vec<Target> = targets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(_, t)| t.clone())
                    .collect();
                scope.spawn(move || {
                    let mut client = HttpClient::new(addr, config.keep_alive);
                    let mut samples = Vec::new();
                    let mut next = 0usize;
                    while Instant::now() < deadline && !mine.is_empty() {
                        let target = &mine[next % mine.len()];
                        next += 1;
                        let sent = Instant::now();
                        let response = client.get(&target.target);
                        samples.push(Sample {
                            endpoint: target.endpoint.clone(),
                            latency_us: sent.elapsed().as_secs_f64() * 1e6,
                            ok: matches!(response, Ok((200, _))),
                        });
                    }
                    (samples, client.connects())
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().ok())
            .collect::<Vec<_>>()
    });
    collect(results, start)
}

/// Flattens per-worker results and stamps the measured wall time.
fn collect(results: Vec<(Vec<Sample>, u64)>, start: Instant) -> (Vec<Sample>, u64, f64) {
    let elapsed_s = start.elapsed().as_secs_f64();
    let connects = results.iter().map(|(_, c)| c).sum();
    let samples = results.into_iter().flat_map(|(s, _)| s).collect();
    (samples, connects, elapsed_s)
}

/// Exact sample statistics for one endpoint; `None` when no request
/// succeeded (quantiles of nothing would be NaN, which JSON cannot carry).
fn stats_for(endpoint: &str, samples: &[Sample]) -> Option<EndpointStats> {
    let count = samples.len() as u64;
    let errors = samples.iter().filter(|s| !s.ok).count() as u64;
    let mut lat: Vec<f64> = samples
        .iter()
        .filter(|s| s.ok)
        .map(|s| s.latency_us)
        .collect();
    if lat.is_empty() {
        return None;
    }
    lat.sort_by(f64::total_cmp);
    let q = |p: f64| lat[(((lat.len() - 1) as f64) * p).round() as usize];
    Some(EndpointStats {
        endpoint: endpoint.to_string(),
        count,
        errors,
        mean_us: lat.iter().sum::<f64>() / lat.len() as f64,
        p50_us: q(0.50),
        p90_us: q(0.90),
        p99_us: q(0.99),
        p999_us: q(0.999),
        max_us: lat[lat.len() - 1],
    })
}

/// Runs the `--check` assertions: zero errors, per-endpoint SLO
/// attainment, and `/stats` windowed-quantile agreement.
fn run_checks(
    addr: SocketAddr,
    doc: &SloDoc,
    samples: &[Sample],
    report: &LoadgenReport,
) -> Vec<Check> {
    let mut checks = vec![Check {
        name: "errors".to_string(),
        passed: report.errors == 0,
        detail: format!("{} of {} requests failed", report.errors, report.requests),
    }];

    for def in &doc.slos {
        let bound_us = def.threshold_ms * 1000.0;
        let (total, good) = samples
            .iter()
            .filter(|s| s.endpoint == def.endpoint)
            .fold((0u64, 0u64), |(t, g), s| {
                (t + 1, g + u64::from(s.ok && s.latency_us <= bound_us))
            });
        let (passed, detail) = if total == 0 {
            (false, "no traffic reached this endpoint".to_string())
        } else {
            let attainment = good as f64 / total as f64;
            (
                attainment >= def.target,
                format!(
                    "attainment {attainment:.4} vs target {} at {}ms ({good}/{total} good)",
                    def.target, def.threshold_ms
                ),
            )
        };
        checks.push(Check {
            name: format!("slo:{}", def.endpoint),
            passed,
            detail,
        });
    }

    match http_get(addr, "/stats") {
        Ok((200, body)) => {
            for def in &doc.slos {
                let Some(measured) = report.endpoints.iter().find(|e| e.endpoint == def.endpoint)
                else {
                    continue; // no-traffic case already failed the slo check
                };
                if measured.count - measured.errors < STATS_AGREEMENT_MIN_SAMPLES {
                    checks.push(Check {
                        name: format!("stats-agreement:{}", def.endpoint),
                        passed: true,
                        detail: format!(
                            "skipped: only {} samples, floor is {STATS_AGREEMENT_MIN_SAMPLES}",
                            measured.count - measured.errors
                        ),
                    });
                    continue;
                }
                let (passed, detail) = match stats_route(&body, &def.endpoint) {
                    Some((p50, p99)) => {
                        let d50 = (p50 / measured.p50_us).log10().abs();
                        let d99 = (p99 / measured.p99_us).log10().abs();
                        (
                            d50 <= STATS_AGREEMENT_DECADES && d99 <= STATS_AGREEMENT_DECADES,
                            format!(
                                "p50 {:.0}us vs /stats {p50:.0}us, p99 {:.0}us vs {p99:.0}us",
                                measured.p50_us, measured.p99_us
                            ),
                        )
                    }
                    None => (false, "route missing from /stats".to_string()),
                };
                checks.push(Check {
                    name: format!("stats-agreement:{}", def.endpoint),
                    passed,
                    detail,
                });
            }
        }
        Ok((status, _)) => checks.push(Check {
            name: "stats-agreement".to_string(),
            passed: false,
            detail: format!("/stats returned {status}"),
        }),
        Err(e) => checks.push(Check {
            name: "stats-agreement".to_string(),
            passed: false,
            detail: format!("/stats unreachable: {e}"),
        }),
    }
    checks
}

/// Pulls `(p50_us, p99_us)` for `route` out of a `gsu-stats-v1` body.
fn stats_route(body: &str, route: &str) -> Option<(f64, f64)> {
    let routes = body.split_once("\"routes\":[")?.1;
    let routes = &routes[..routes.find(']').unwrap_or(routes.len())];
    let marker = format!("\"route\":\"{route}\"");
    let obj = routes.split('{').find(|chunk| chunk.contains(&marker))?;
    let obj = &obj[..obj.find('}').unwrap_or(obj.len())];
    Some((number_field(obj, "p50_us")?, number_field(obj, "p99_us")?))
}

impl LoadgenReport {
    /// Whether every requested check held (vacuously true without
    /// `--check`).
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// The `gsu-loadgen-v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"{REPORT_SCHEMA}\",\"mode\":\"{}\",\"label\":\"{}\",\
             \"rate_rps\":{},\"duration_s\":{},\"connections\":{},\"seed\":{},\
             \"keep_alive\":{},\"requests\":{},\"errors\":{},\"connects\":{},\
             \"elapsed_s\":{},\"throughput_rps\":{},\n \"overall\":",
            self.mode,
            self.label,
            self.rate_rps,
            self.duration_s,
            self.connections,
            self.seed,
            self.keep_alive,
            self.requests,
            self.errors,
            self.connects,
            self.elapsed_s,
            self.throughput_rps,
        );
        push_stats(&mut out, &self.overall);
        out.push_str(",\n \"endpoints\":[");
        for (i, e) in self.endpoints.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            push_stats(&mut out, e);
        }
        out.push_str("],\n \"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n  {{\"name\":\"{}\",\"passed\":{},\"detail\":\"{}\"}}",
                c.name, c.passed, c.detail
            );
        }
        out.push_str("]}\n");
        out
    }

    /// A human-readable summary, one line per fact.
    pub fn render(&self) -> String {
        let mut out = format!(
            "loadgen {} ({}): {} requests in {:.2}s at {:.1} rps planned \
             ({:.1} rps achieved), {} errors, {} connections opened\n",
            self.mode,
            self.label,
            self.requests,
            self.elapsed_s,
            self.rate_rps,
            self.throughput_rps,
            self.errors,
            self.connects,
        );
        let mut rows: Vec<&EndpointStats> = self.endpoints.iter().collect();
        rows.insert(0, &self.overall);
        for e in rows {
            let _ = writeln!(
                out,
                "  {:<10} n={:<5} p50={:>8.0}us p90={:>8.0}us p99={:>8.0}us \
                 p999={:>8.0}us max={:>8.0}us",
                e.endpoint, e.count, e.p50_us, e.p90_us, e.p99_us, e.p999_us, e.max_us
            );
        }
        for c in &self.checks {
            let verdict = if c.passed { "PASS" } else { "FAIL" };
            let _ = writeln!(out, "  check {verdict} {} — {}", c.name, c.detail);
        }
        out
    }
}

/// Appends one [`EndpointStats`] object to `out`.
fn push_stats(out: &mut String, e: &EndpointStats) {
    let _ = write!(
        out,
        "{{\"endpoint\":\"{}\",\"count\":{},\"errors\":{},\"mean_us\":{},\
         \"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{}}}",
        e.endpoint, e.count, e.errors, e.mean_us, e.p50_us, e.p90_us, e.p99_us, e.p999_us, e.max_us
    );
}

/// Parses a `gsu-loadgen-v1` report back into a [`LoadgenReport`]
/// (checks are parsed for their verdicts; details round-trip as written).
///
/// # Errors
///
/// A description of the first missing or malformed field.
pub fn parse_report(text: &str) -> Result<LoadgenReport, String> {
    if !text.contains(&format!("\"schema\":\"{REPORT_SCHEMA}\"")) {
        return Err(format!("missing schema tag {REPORT_SCHEMA:?}"));
    }
    let num =
        |key: &str| number_field(text, key).ok_or_else(|| format!("missing numeric field {key:?}"));
    let overall_body = text
        .split_once("\"overall\":{")
        .map(|(_, rest)| &rest[..rest.find('}').unwrap_or(rest.len())])
        .ok_or("missing \"overall\" object")?;
    let endpoints_body = text
        .split_once("\"endpoints\":[")
        .map(|(_, rest)| &rest[..rest.find(']').unwrap_or(rest.len())])
        .ok_or("missing \"endpoints\" array")?;
    let endpoints = endpoints_body
        .split('{')
        .skip(1)
        .map(|chunk| parse_stats(&chunk[..chunk.find('}').unwrap_or(chunk.len())]))
        .collect::<Result<Vec<_>, _>>()?;
    let checks_body = text
        .split_once("\"checks\":[")
        .map(|(_, rest)| &rest[..rest.find(']').unwrap_or(rest.len())])
        .ok_or("missing \"checks\" array")?;
    let checks = checks_body
        .split('{')
        .skip(1)
        .map(|chunk| {
            let obj = &chunk[..chunk.find('}').unwrap_or(chunk.len())];
            let name = string_field(obj, "name").ok_or("check missing \"name\"")?;
            let passed = match string_free_field(obj, "passed") {
                Some("true") => true,
                Some("false") => false,
                _ => return Err("check missing boolean \"passed\"".to_string()),
            };
            let detail = string_field(obj, "detail").unwrap_or_default();
            Ok(Check {
                name,
                passed,
                detail,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(LoadgenReport {
        mode: string_field(text, "mode").ok_or("missing string field \"mode\"")?,
        label: string_field(text, "label").ok_or("missing string field \"label\"")?,
        rate_rps: num("rate_rps")?,
        duration_s: num("duration_s")?,
        connections: num("connections")? as usize,
        seed: num("seed")? as u64,
        keep_alive: match string_free_field(text, "keep_alive") {
            Some("true") => true,
            Some("false") => false,
            _ => return Err("missing boolean field \"keep_alive\"".to_string()),
        },
        requests: num("requests")? as u64,
        errors: num("errors")? as u64,
        connects: num("connects")? as u64,
        elapsed_s: num("elapsed_s")?,
        throughput_rps: num("throughput_rps")?,
        overall: parse_stats(overall_body)?,
        endpoints,
        checks,
    })
}

/// Parses one serialized [`EndpointStats`] object body.
fn parse_stats(obj: &str) -> Result<EndpointStats, String> {
    let num = |key: &str| {
        number_field(obj, key).ok_or_else(|| format!("stats entry missing numeric field {key:?}"))
    };
    Ok(EndpointStats {
        endpoint: string_field(obj, "endpoint").ok_or("stats entry missing \"endpoint\"")?,
        count: num("count")? as u64,
        errors: num("errors")? as u64,
        mean_us: num("mean_us")?,
        p50_us: num("p50_us")?,
        p90_us: num("p90_us")?,
        p99_us: num("p99_us")?,
        p999_us: num("p999_us")?,
        max_us: num("max_us")?,
    })
}

/// Value of `"key":<number>` in `obj`, if present and parsable.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    string_free_field(obj, key)?.parse().ok()
}

/// Raw unquoted token after `"key":` (number, `true`, `false`).
fn string_free_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Value of `"key":"<string>"` in `obj` (no escape handling: endpoint
/// paths, labels, and check names are plain).
fn string_field(obj: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let rest = &obj[obj.find(&needle)? + needle.len()..];
    rest.split('"').next().map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_pool_independent() {
        let a = build_schedule(200.0, 1.0, 7);
        assert!(!a.is_empty(), "200 rps over 1s should schedule requests");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets must ascend");
        assert!(*a.last().unwrap_or(&0) < 1_000_000_000, "inside horizon");
        // Byte-identical regardless of the pool the caller runs under:
        // the schedule draw never touches the pool.
        let b = pool::Pool::new(1).scope(|_| build_schedule(200.0, 1.0, 7));
        let c = pool::Pool::new(4).scope(|_| build_schedule(200.0, 1.0, 7));
        assert_eq!(a, b);
        assert_eq!(a, c);
        // …but it is genuinely seeded.
        assert_ne!(a, build_schedule(200.0, 1.0, 8));
    }

    #[test]
    fn schedule_rate_is_roughly_honoured() {
        let n = build_schedule(500.0, 4.0, 11).len() as f64;
        let expect = 500.0 * 4.0;
        assert!(
            (n - expect).abs() < expect * 0.2,
            "got {n} arrivals, want ~{expect}"
        );
    }

    #[test]
    fn target_mix_is_deterministic_and_covers_the_endpoints() {
        let catalog =
            gsu_scenario::catalog::load_dir(std::path::Path::new("../../scenarios")).unwrap();
        let a = build_targets(400, 3, &catalog);
        let b = build_targets(400, 3, &catalog);
        assert_eq!(a, b, "same seed, same mix");
        assert_ne!(a, build_targets(400, 4, &catalog), "seed matters");
        let evals = a.iter().filter(|t| t.endpoint == "/eval").count();
        let scenarios = a.iter().filter(|t| t.target.contains("scenario=")).count();
        let metrics = a.iter().filter(|t| t.endpoint == "/metrics").count();
        let health = a.iter().filter(|t| t.endpoint == "/healthz").count();
        assert!(evals > 200, "evals dominate the mix: {evals}");
        assert!(scenarios > 50, "scenario share present: {scenarios}");
        assert!(metrics > 10, "metrics share present: {metrics}");
        assert!(health > 10, "healthz share present: {health}");
        // Scenario targets only name cheap catalog entries.
        for t in &a {
            if let Some((_, rest)) = t.target.split_once("scenario=") {
                let name = rest.split('&').next().unwrap_or(rest);
                assert!(
                    name.starts_with("paper-") || name == "small-exact",
                    "unexpected scenario {name}"
                );
            }
        }
    }

    #[test]
    fn empty_catalog_folds_scenarios_into_plain_eval() {
        let targets = build_targets(200, 3, &[]);
        assert!(targets.iter().all(|t| !t.target.contains("scenario=")));
        assert!(targets.iter().any(|t| t.endpoint == "/eval"));
    }

    fn sample_report() -> LoadgenReport {
        let stats = |endpoint: &str| EndpointStats {
            endpoint: endpoint.to_string(),
            count: 100,
            errors: 1,
            mean_us: 1234.5,
            p50_us: 1000.0,
            p90_us: 2000.0,
            p99_us: 4000.0,
            p999_us: 8000.0,
            max_us: 9000.5,
        };
        LoadgenReport {
            mode: "open".to_string(),
            label: "open".to_string(),
            rate_rps: 40.0,
            duration_s: 2.0,
            connections: 2,
            seed: 42,
            keep_alive: true,
            requests: 100,
            errors: 1,
            connects: 2,
            elapsed_s: 2.05,
            throughput_rps: 48.3,
            overall: stats("_all"),
            endpoints: vec![stats("/eval"), stats("/metrics")],
            checks: vec![Check {
                name: "slo:/eval".to_string(),
                passed: true,
                detail: "attainment 0.99 vs target 0.9".to_string(),
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let parsed = parse_report(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert!(parsed.passed());
    }

    #[test]
    fn parse_rejects_malformed_reports() {
        let good = sample_report().to_json();
        assert!(parse_report("{}").is_err(), "schema tag required");
        assert!(
            parse_report(&good.replace(REPORT_SCHEMA, "gsu-loadgen-v0")).is_err(),
            "wrong schema version"
        );
        assert!(
            parse_report(&good.replace("\"requests\":100", "\"requests\":x")).is_err(),
            "non-numeric field"
        );
        assert!(
            parse_report(&good.replace("\"overall\":", "\"overall_gone\":")).is_err(),
            "missing overall"
        );
    }

    #[test]
    fn stats_route_reads_the_serve_stats_shape() {
        let body = r#"{"schema":"gsu-stats-v1","uptime_s":1,"window_s":60,
          "connections":{"accepted":3,"queue_depth":0,"inflight":1},
          "routes":[
            {"route":"/eval","count":10,"mean_us":1500,"p50_us":1200,"p90_us":2000,"p99_us":3000,"p999_us":3500,"max_us":4000},
            {"route":"/metrics","count":4,"mean_us":300,"p50_us":250,"p90_us":400,"p99_us":500,"p999_us":550,"max_us":600}],
          "slos":[{"endpoint":"/eval","threshold_ms":250,"target":0.9,"count":10,"attainment":1,"burn_rate":0,"met":true}]}"#;
        assert_eq!(stats_route(body, "/eval"), Some((1200.0, 3000.0)));
        assert_eq!(stats_route(body, "/metrics"), Some((250.0, 500.0)));
        assert_eq!(stats_route(body, "/nope"), None);
    }

    #[test]
    fn exact_quantiles_over_known_samples() {
        let samples: Vec<Sample> = (1..=100)
            .map(|i| Sample {
                endpoint: "/eval".to_string(),
                latency_us: i as f64,
                ok: true,
            })
            .collect();
        let stats = stats_for("/eval", &samples).unwrap();
        assert_eq!(stats.count, 100);
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.p50_us, 51.0);
        assert_eq!(stats.p90_us, 90.0);
        assert_eq!(stats.p99_us, 99.0);
        assert_eq!(stats.max_us, 100.0);
        // All-failure groups have no quantiles to report.
        let failed = vec![Sample {
            endpoint: "/eval".to_string(),
            latency_us: 1.0,
            ok: false,
        }];
        assert!(stats_for("/eval", &failed).is_none());
    }
}
