//! Scenario-catalog benchmark and golden-curve gate.
//!
//! `gsu-bench scenarios` walks the `.gsu` catalog, builds every scenario's
//! analytic pipeline, sweeps the full Y(φ) curve, and either writes the
//! golden curves (`--write-golden`) or checks the freshly computed curves
//! against the committed goldens to a tight relative tolerance (`--check`,
//! the default). Each scenario is timed through [`crate::BenchTimer`], so a
//! run leaves per-scenario wall/work records in `BENCH_sweep.json` that join
//! the ratcheting `gsu-bench regress` gate.

use std::path::PathBuf;

use gsu_scenario::{load_dir, read_golden, write_golden, GoldenCurve, ScenarioAnalysis};

/// Relative tolerance for golden-curve comparison. The analytic pipeline is
/// deterministic; the slack only absorbs cross-platform libm drift.
pub const GOLDEN_REL_TOL: f64 = 1e-9;

/// Configuration for the `scenarios` subcommand.
#[derive(Debug, Clone)]
pub struct ScenariosConfig {
    /// Directory of `.gsu` scenario files.
    pub dir: PathBuf,
    /// Directory of golden-curve JSON files.
    pub golden: PathBuf,
    /// Directory receiving `BENCH_sweep.json` records.
    pub out: PathBuf,
    /// Regenerate goldens instead of checking against them.
    pub write_golden: bool,
}

impl Default for ScenariosConfig {
    fn default() -> Self {
        ScenariosConfig {
            dir: PathBuf::from("scenarios"),
            golden: PathBuf::from("results/golden"),
            out: PathBuf::from("results"),
            write_golden: false,
        }
    }
}

/// Outcome for one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Scenario name (file stem).
    pub name: String,
    /// Number of φ grid points swept.
    pub points: usize,
    /// Wall-clock milliseconds for build + sweep.
    pub wall_ms: f64,
    /// Largest relative deviation from the golden curve (0 when writing).
    pub max_rel_err: f64,
    /// `None` on success, `Some(reason)` on failure.
    pub failure: Option<String>,
}

/// The full catalog run.
#[derive(Debug, Clone)]
pub struct ScenariosReport {
    /// One outcome per catalog entry, in name order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Whether goldens were written rather than checked.
    pub wrote_golden: bool,
}

impl ScenariosReport {
    /// `true` when every scenario passed.
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.failure.is_none())
    }

    /// Renders the human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verb = if self.wrote_golden {
            "wrote"
        } else {
            "checked"
        };
        out.push_str(&format!(
            "scenario catalog: {} {} golden curve(s)\n",
            verb,
            self.outcomes.len()
        ));
        for o in &self.outcomes {
            match &o.failure {
                None => out.push_str(&format!(
                    "  ok   {:<22} {:>3} pts  {:>9.1} ms  max rel err {:.2e}\n",
                    o.name, o.points, o.wall_ms, o.max_rel_err
                )),
                Some(why) => {
                    out.push_str(&format!("  FAIL {:<22} {why}\n", o.name));
                }
            }
        }
        out
    }
}

/// Runs the catalog sweep.
///
/// # Errors
///
/// Fails on catalog I/O or parse errors; per-scenario analytic failures are
/// reported as outcome failures, not hard errors.
pub fn run(config: &ScenariosConfig) -> Result<ScenariosReport, String> {
    let specs = load_dir(&config.dir).map_err(|e| e.to_string())?;
    if specs.is_empty() {
        return Err(format!(
            "no .gsu scenarios found in {}",
            config.dir.display()
        ));
    }
    if config.write_golden {
        std::fs::create_dir_all(&config.golden)
            .map_err(|e| format!("cannot create {}: {e}", config.golden.display()))?;
    }
    let mut outcomes = Vec::with_capacity(specs.len());
    for spec in specs {
        let name = spec.name.clone();
        let points = spec.phi_grid.len();
        // Three timed passes (one cold, two warm), recording the *minimum*
        // wall time: the catalog's small scenarios solve in single-digit
        // milliseconds, where one-shot timings carry scheduler/first-touch
        // noise well past the regress gate's 10% threshold. The min is the
        // standard low-noise estimator; the work counters are deterministic
        // and identical across passes, so one pass's delta serves.
        let work_start = telemetry::work::snapshot();
        let start = std::time::Instant::now();
        let mut curve = ScenarioAnalysis::new(spec.clone()).and_then(|analysis| analysis.curve());
        let mut wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let work = telemetry::work::snapshot().delta_since(&work_start);
        for _ in 0..2 {
            if curve.is_err() {
                break;
            }
            let start = std::time::Instant::now();
            curve = ScenarioAnalysis::new(spec.clone()).and_then(|analysis| analysis.curve());
            wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }
        if curve.is_ok() {
            let record = crate::BenchRecord {
                name: format!("scenario:{name}"),
                wall_ms,
                threads: pool::configured_threads(),
                grid: points,
                iterations: work.solver_iterations,
                spmv_ops: work.spmv_ops,
            };
            if let Err(e) = crate::merge_bench_record(&config.out.join("BENCH_sweep.json"), record)
            {
                eprintln!("bench: failed to update sweep log: {e}");
            }
        }
        let outcome = match curve {
            Err(e) => ScenarioOutcome {
                name: name.clone(),
                points,
                wall_ms,
                max_rel_err: f64::NAN,
                failure: Some(format!("analytic pipeline failed: {e}")),
            },
            Ok(sweep) => {
                let fresh = GoldenCurve {
                    scenario: name.clone(),
                    points: sweep.iter().map(|p| (p.phi, p.y)).collect(),
                };
                let golden_path = config.golden.join(format!("{name}.json"));
                if config.write_golden {
                    match write_golden(&golden_path, &fresh) {
                        Ok(()) => ScenarioOutcome {
                            name,
                            points,
                            wall_ms,
                            max_rel_err: 0.0,
                            failure: None,
                        },
                        Err(e) => ScenarioOutcome {
                            name,
                            points,
                            wall_ms,
                            max_rel_err: f64::NAN,
                            failure: Some(e.to_string()),
                        },
                    }
                } else {
                    match read_golden(&golden_path) {
                        Ok(golden) => {
                            let (max_rel_err, failure) = compare(&golden, &fresh);
                            ScenarioOutcome {
                                name,
                                points,
                                wall_ms,
                                max_rel_err,
                                failure,
                            }
                        }
                        Err(e) => ScenarioOutcome {
                            name,
                            points,
                            wall_ms,
                            max_rel_err: f64::NAN,
                            failure: Some(format!(
                                "missing golden (run `gsu-bench scenarios --write-golden`): {e}"
                            )),
                        },
                    }
                }
            }
        };
        outcomes.push(outcome);
    }
    Ok(ScenariosReport {
        outcomes,
        wrote_golden: config.write_golden,
    })
}

/// Compares a fresh curve against its golden, returning the worst relative
/// error and a failure description when out of tolerance.
fn compare(golden: &GoldenCurve, fresh: &GoldenCurve) -> (f64, Option<String>) {
    if golden.points.len() != fresh.points.len() {
        return (
            f64::NAN,
            Some(format!(
                "golden has {} point(s), analytic sweep produced {}",
                golden.points.len(),
                fresh.points.len()
            )),
        );
    }
    let mut max_rel_err = 0.0f64;
    for (&(gphi, gy), &(fphi, fy)) in golden.points.iter().zip(&fresh.points) {
        if gphi != fphi {
            return (
                f64::NAN,
                Some(format!(
                    "grid mismatch: golden phi {gphi}, scenario phi {fphi}"
                )),
            );
        }
        let rel = (fy - gy).abs() / gy.abs().max(1.0);
        max_rel_err = max_rel_err.max(rel);
        if rel > GOLDEN_REL_TOL {
            return (
                rel,
                Some(format!(
                    "Y({gphi}) = {fy} drifted from golden {gy} (rel err {rel:.2e} > {GOLDEN_REL_TOL:.0e})"
                )),
            );
        }
    }
    (max_rel_err, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden(points: Vec<(f64, f64)>) -> GoldenCurve {
        GoldenCurve {
            scenario: "g".to_string(),
            points,
        }
    }

    #[test]
    fn compare_accepts_exact_match() {
        let g = golden(vec![(0.0, 1.0), (10.0, 1.5)]);
        let (err, failure) = compare(&g, &g.clone());
        assert_eq!(err, 0.0);
        assert!(failure.is_none());
    }

    #[test]
    fn compare_rejects_drift_and_shape_mismatch() {
        let g = golden(vec![(0.0, 1.0), (10.0, 1.5)]);
        let drifted = golden(vec![(0.0, 1.0), (10.0, 1.5 + 1e-6)]);
        let (_, failure) = compare(&g, &drifted);
        assert!(failure.is_some());
        let short = golden(vec![(0.0, 1.0)]);
        assert!(compare(&g, &short).1.is_some());
        let moved = golden(vec![(0.0, 1.0), (11.0, 1.5)]);
        assert!(compare(&g, &moved).1.is_some());
    }

    #[test]
    fn missing_catalog_dir_is_an_error() {
        let config = ScenariosConfig {
            dir: PathBuf::from("does-not-exist"),
            ..ScenariosConfig::default()
        };
        assert!(run(&config).is_err());
    }
}
