//! The bench regression gate: `gsu-bench regress`.
//!
//! Compares the current `BENCH_sweep.json` (written by the experiment
//! binaries' [`BenchTimer`](crate::BenchTimer)s) against a committed
//! baseline, keyed on `(name, threads)`. A run **regresses** when its wall
//! time exceeds the baseline by more than the threshold fraction (default
//! 10%). On a clean pass the current numbers are merged into the baseline —
//! speedups ratchet the bar down, new experiments get seeded — unless the
//! caller asks for a read-only check (`--no-update`, used by CI so the tree
//! stays pristine).

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::{read_bench_records, write_bench_records, BenchRecord};

/// Default regression threshold: 10% slower than baseline fails.
pub const DEFAULT_THRESHOLD: f64 = 0.10;

/// Configuration for one gate run.
#[derive(Debug, Clone)]
pub struct RegressConfig {
    /// Baseline log path (committed; `results/BENCH_baseline.json`).
    pub baseline: PathBuf,
    /// Current log path (`results/BENCH_sweep.json`).
    pub current: PathBuf,
    /// Allowed fractional slowdown before a run counts as a regression.
    pub threshold: f64,
    /// Whether a passing run merges current numbers into the baseline.
    pub update: bool,
    /// Whether baseline entries missing from the current log are tolerated.
    /// Off by default: a silently vanished experiment is exactly the kind
    /// of coverage loss the gate exists to catch.
    pub allow_missing: bool,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            baseline: PathBuf::from("results/BENCH_baseline.json"),
            current: PathBuf::from("results/BENCH_sweep.json"),
            threshold: DEFAULT_THRESHOLD,
            update: true,
            allow_missing: false,
        }
    }
}

/// One `(name, threads)` pair present in both logs.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Experiment name.
    pub name: String,
    /// Pool width of the run.
    pub threads: usize,
    /// Baseline wall time (ms).
    pub baseline_ms: f64,
    /// Current wall time (ms).
    pub current_ms: f64,
    /// `current / baseline` — `> 1 + threshold` means regression.
    pub ratio: f64,
    /// Whether wall time breaches the threshold.
    pub regressed: bool,
    /// Baseline solver iterations (0 = predates work counters, not compared).
    pub baseline_iterations: u64,
    /// Current solver iterations.
    pub current_iterations: u64,
    /// Baseline SpMV count (0 = predates work counters, not compared).
    pub baseline_spmv_ops: u64,
    /// Current SpMV count.
    pub current_spmv_ops: u64,
    /// Whether a work metric breaches the threshold. Work counters are
    /// deterministic, so unlike wall time this cannot be scheduler noise:
    /// the algorithm itself started doing more work.
    pub work_regressed: bool,
}

impl Comparison {
    /// `true` when either the wall time or a work metric regressed.
    pub fn failed(&self) -> bool {
        self.regressed || self.work_regressed
    }
}

/// Work-metric breach test: a zero baseline means the metric predates the
/// counters — seed it on the next ratchet instead of comparing.
fn work_breach(baseline: u64, current: u64, threshold: f64) -> bool {
    baseline > 0 && current as f64 > baseline as f64 * (1.0 + threshold)
}

/// The outcome of a gate run.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressReport {
    /// Threshold the comparisons were judged against.
    pub threshold: f64,
    /// Pairs present in both logs, in `(name, threads)` order.
    pub compared: Vec<Comparison>,
    /// Current records with no baseline entry (seeded, never failing).
    pub added: Vec<BenchRecord>,
    /// Baseline records the current log no longer has (kept in the
    /// baseline, but failing the gate unless `allow_missing` is set).
    pub stale: Vec<BenchRecord>,
    /// Whether the baseline file was created from scratch this run.
    pub seeded: bool,
    /// Whether stale baseline entries were tolerated this run.
    pub allow_missing: bool,
}

impl RegressReport {
    /// `true` when no compared pair regressed and no baseline entry went
    /// missing (unless missing entries were explicitly allowed).
    pub fn passed(&self) -> bool {
        self.compared.iter().all(|c| !c.failed()) && (self.allow_missing || self.stale.is_empty())
    }

    /// Human-readable gate summary (one line per pair).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.seeded {
            let _ = writeln!(out, "regress: no baseline found; seeding from current run");
        }
        for c in &self.compared {
            let verdict = if c.regressed { "REGRESSED" } else { "ok" };
            let _ = writeln!(
                out,
                "regress: {:<22} threads={} {:>9.3}ms vs {:>9.3}ms baseline ({:+.1}%) {}",
                c.name,
                c.threads,
                c.current_ms,
                c.baseline_ms,
                (c.ratio - 1.0) * 100.0,
                verdict
            );
            if c.baseline_iterations > 0 || c.current_iterations > 0 {
                let verdict =
                    if work_breach(c.baseline_iterations, c.current_iterations, self.threshold) {
                        "WORK REGRESSED"
                    } else {
                        "ok"
                    };
                let delta = if c.baseline_iterations > 0 {
                    format!(
                        " ({:+.1}%)",
                        (c.current_iterations as f64 / c.baseline_iterations as f64 - 1.0) * 100.0
                    )
                } else {
                    String::new()
                };
                let _ = writeln!(
                    out,
                    "regress: {:<22} threads={} {:>9} vs {:>9} baseline iterations{} {}",
                    c.name, c.threads, c.current_iterations, c.baseline_iterations, delta, verdict
                );
            }
            if c.baseline_spmv_ops > 0 || c.current_spmv_ops > 0 {
                let verdict =
                    if work_breach(c.baseline_spmv_ops, c.current_spmv_ops, self.threshold) {
                        "WORK REGRESSED"
                    } else {
                        "ok"
                    };
                let _ = writeln!(
                    out,
                    "regress: {:<22} threads={} {:>9} vs {:>9} baseline spmv_ops {}",
                    c.name, c.threads, c.current_spmv_ops, c.baseline_spmv_ops, verdict
                );
            }
        }
        for r in &self.added {
            let _ = writeln!(
                out,
                "regress: {:<22} threads={} {:>9.3}ms (new; no baseline)",
                r.name, r.threads, r.wall_ms
            );
        }
        for r in &self.stale {
            let _ = writeln!(
                out,
                "regress: {:<22} threads={} baseline entry MISSING from current run{}",
                r.name,
                r.threads,
                if self.allow_missing {
                    " (allowed by --allow-missing)"
                } else {
                    ""
                }
            );
        }
        // On a pass, surface how far the ratchet moved: CI logs otherwise
        // only ever show regressions, so steady speedups stay invisible.
        if self.passed() && !self.compared.is_empty() {
            let faster = self.compared.iter().filter(|c| c.ratio < 1.0).count();
            let log_speedup: f64 = self
                .compared
                .iter()
                .filter(|c| c.ratio > 0.0 && c.ratio.is_finite())
                .map(|c| -c.ratio.ln())
                .sum::<f64>()
                / self.compared.len() as f64;
            let (base_iters, cur_iters) = self
                .compared
                .iter()
                .filter(|c| c.baseline_iterations > 0)
                .fold((0u64, 0u64), |(b, c2), c| {
                    (b + c.baseline_iterations, c2 + c.current_iterations)
                });
            let iter_note = if base_iters > 0 {
                format!(
                    "; iterations {} -> {} ({:+.1}%)",
                    base_iters,
                    cur_iters,
                    (cur_iters as f64 / base_iters as f64 - 1.0) * 100.0
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "regress: ratchet summary: {}/{} records faster; geometric-mean speedup x{:.2}{}",
                faster,
                self.compared.len(),
                log_speedup.exp(),
                iter_note
            );
        }
        let _ = writeln!(
            out,
            "regress: {} compared, {} new, {} stale; threshold {:.0}% -> {}",
            self.compared.len(),
            self.added.len(),
            self.stale.len(),
            self.threshold * 100.0,
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Pure comparison of two record sets (no I/O).
pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord], threshold: f64) -> RegressReport {
    let mut compared = Vec::new();
    let mut added = Vec::new();
    for cur in current {
        match baseline
            .iter()
            .find(|b| b.name == cur.name && b.threads == cur.threads)
        {
            Some(base) => {
                let ratio = if base.wall_ms > 0.0 {
                    cur.wall_ms / base.wall_ms
                } else {
                    f64::INFINITY
                };
                compared.push(Comparison {
                    name: cur.name.clone(),
                    threads: cur.threads,
                    baseline_ms: base.wall_ms,
                    current_ms: cur.wall_ms,
                    ratio,
                    regressed: cur.wall_ms > base.wall_ms * (1.0 + threshold),
                    baseline_iterations: base.iterations,
                    current_iterations: cur.iterations,
                    baseline_spmv_ops: base.spmv_ops,
                    current_spmv_ops: cur.spmv_ops,
                    work_regressed: work_breach(base.iterations, cur.iterations, threshold)
                        || work_breach(base.spmv_ops, cur.spmv_ops, threshold),
                });
            }
            None => added.push(cur.clone()),
        }
    }
    let stale = baseline
        .iter()
        .filter(|b| {
            !current
                .iter()
                .any(|c| c.name == b.name && c.threads == b.threads)
        })
        .cloned()
        .collect();
    RegressReport {
        threshold,
        compared,
        added,
        stale,
        seeded: false,
        allow_missing: false,
    }
}

/// Runs the gate: read both logs, compare, and (on a pass, when
/// `config.update`) merge the current numbers into the baseline. A missing
/// baseline is seeded from the current log and passes trivially; a missing
/// *current* log is an error — the gate is meaningless without measurements.
///
/// # Errors
///
/// I/O failures reading the current log or reading/writing the baseline.
pub fn run(config: &RegressConfig) -> std::io::Result<RegressReport> {
    let current = read_bench_records(&config.current)?;
    if current.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("no bench records in {}", config.current.display()),
        ));
    }
    let (baseline, seeded) = match read_bench_records(&config.baseline) {
        Ok(records) => (records, false),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), true),
        Err(e) => return Err(e),
    };
    let mut report = compare(&baseline, &current, config.threshold);
    report.seeded = seeded;
    report.allow_missing = config.allow_missing;
    if report.passed() && config.update {
        // Merge rather than overwrite: stale baseline entries survive until
        // their experiment runs again.
        let mut merged = baseline;
        for cur in &current {
            match merged
                .iter_mut()
                .find(|b| b.name == cur.name && b.threads == cur.threads)
            {
                Some(slot) => *slot = cur.clone(),
                None => merged.push(cur.clone()),
            }
        }
        write_bench_records(&config.baseline, &merged)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, wall_ms: f64, threads: usize) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            wall_ms,
            threads,
            grid: 10,
            iterations: 0,
            spmv_ops: 0,
        }
    }

    fn rec_work(name: &str, wall_ms: f64, iterations: u64, spmv_ops: u64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            wall_ms,
            threads: 1,
            grid: 10,
            iterations,
            spmv_ops,
        }
    }

    #[test]
    fn within_threshold_passes() {
        let report = compare(&[rec("fig9", 100.0, 1)], &[rec("fig9", 109.9, 1)], 0.10);
        assert!(report.passed());
        assert_eq!(report.compared.len(), 1);
        assert!(!report.compared[0].regressed);
    }

    #[test]
    fn twenty_percent_slower_fails_default_threshold() {
        let report = compare(
            &[rec("fig9", 100.0, 1)],
            &[rec("fig9", 120.0, 1)],
            DEFAULT_THRESHOLD,
        );
        assert!(!report.passed());
        assert!(report.render().contains("REGRESSED"));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn speedups_and_new_entries_never_fail() {
        let report = compare(
            &[rec("fig9", 100.0, 1)],
            &[rec("fig9", 40.0, 1), rec("fig10", 70.0, 4)],
            0.10,
        );
        assert!(report.passed());
        assert_eq!(report.added.len(), 1);
        assert_eq!(report.added[0].name, "fig10");
    }

    #[test]
    fn work_inflation_fails_even_with_unchanged_wall() {
        // The ISSUE-9 acceptance scenario: fig9 suddenly does 25% more
        // solver iterations but the wall clock (noisy, or masked by a faster
        // machine) is identical. The deterministic work metric must fail the
        // gate on its own.
        let report = compare(
            &[rec_work("fig9", 100.0, 1000, 5000)],
            &[rec_work("fig9", 100.0, 1250, 5000)],
            DEFAULT_THRESHOLD,
        );
        assert!(!report.passed());
        assert!(report.compared[0].work_regressed);
        assert!(!report.compared[0].regressed, "wall did not regress");
        let rendered = report.render();
        assert!(rendered.contains("WORK REGRESSED"), "{rendered}");
        assert!(rendered.contains("FAIL"), "{rendered}");

        // SpMV inflation alone fails too.
        let report = compare(
            &[rec_work("fig9", 100.0, 1000, 5000)],
            &[rec_work("fig9", 100.0, 1000, 6000)],
            DEFAULT_THRESHOLD,
        );
        assert!(!report.passed());

        // Within threshold (and work ratcheting down) passes.
        let report = compare(
            &[rec_work("fig9", 100.0, 1000, 5000)],
            &[rec_work("fig9", 100.0, 1050, 4000)],
            DEFAULT_THRESHOLD,
        );
        assert!(report.passed());
    }

    #[test]
    fn passing_run_renders_ratchet_summary() {
        // A 2x speedup with fewer iterations must be visible in the render:
        // per-record iteration delta plus the aggregate ratchet line.
        let report = compare(
            &[rec_work("fig9", 100.0, 1000, 5000)],
            &[rec_work("fig9", 50.0, 800, 4000)],
            DEFAULT_THRESHOLD,
        );
        assert!(report.passed());
        let rendered = report.render();
        assert!(rendered.contains("(-50.0%)"), "{rendered}");
        assert!(rendered.contains("iterations (-20.0%)"), "{rendered}");
        assert!(
            rendered.contains("ratchet summary: 1/1 records faster; geometric-mean speedup x2.00"),
            "{rendered}"
        );
        assert!(
            rendered.contains("iterations 1000 -> 800 (-20.0%)"),
            "{rendered}"
        );

        // A failing run skips the summary — the regression lines are the story.
        let report = compare(
            &[rec_work("fig9", 100.0, 1000, 5000)],
            &[rec_work("fig9", 150.0, 1000, 5000)],
            DEFAULT_THRESHOLD,
        );
        assert!(!report.passed());
        assert!(!report.render().contains("ratchet summary"));
    }

    #[test]
    fn zero_work_baseline_seeds_instead_of_comparing() {
        // A baseline written before the work counters existed has zeroes:
        // the first instrumented run must pass (and, with update on, ratchet
        // the real numbers in) rather than dividing by zero or failing.
        let report = compare(
            &[rec("fig9", 100.0, 1)],
            &[rec_work("fig9", 100.0, 1250, 5000)],
            DEFAULT_THRESHOLD,
        );
        assert!(report.passed());
        assert!(!report.compared[0].work_regressed);
    }

    #[test]
    fn stale_baseline_entries_fail_unless_allowed() {
        // A baseline pair absent from the sweep means an experiment silently
        // stopped running — that must fail loudly, not slide through.
        let mut report = compare(
            &[rec("fig9", 100.0, 1), rec("gone", 50.0, 1)],
            &[rec("fig9", 90.0, 1)],
            0.10,
        );
        assert!(!report.passed());
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].name, "gone");
        let rendered = report.render();
        assert!(rendered.contains("MISSING"), "{rendered}");
        assert!(rendered.contains("FAIL"), "{rendered}");

        // The explicit escape hatch downgrades it to a reported note.
        report.allow_missing = true;
        assert!(report.passed());
        let rendered = report.render();
        assert!(
            rendered.contains("allowed by --allow-missing"),
            "{rendered}"
        );
        assert!(rendered.contains("PASS"), "{rendered}");
    }

    #[test]
    fn threads_distinguish_records() {
        // Same experiment at a different pool width is a new pair, not a
        // comparison against the wrong baseline — and the 1-thread baseline
        // entry now counts as missing from the current run.
        let report = compare(&[rec("fig9", 100.0, 1)], &[rec("fig9", 500.0, 4)], 0.10);
        assert_eq!(report.compared.len(), 0);
        assert_eq!(report.added.len(), 1);
        assert_eq!(report.stale.len(), 1);
        assert!(!report.passed());
    }

    #[test]
    fn gate_seeds_updates_and_fails_via_files() {
        let dir = std::env::temp_dir().join("gsu-regress-gate-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let config = RegressConfig {
            baseline: dir.join("BENCH_baseline.json"),
            current: dir.join("BENCH_sweep.json"),
            threshold: 0.10,
            ..RegressConfig::default()
        };

        // Missing current log is an error.
        assert!(run(&config).is_err());

        // First run seeds the baseline and passes.
        write_bench_records(&config.current, &[rec("fig9", 100.0, 1)]).unwrap();
        let report = run(&config).unwrap();
        assert!(report.seeded && report.passed());
        assert_eq!(read_bench_records(&config.baseline).unwrap().len(), 1);

        // A 5% slowdown passes and ratchets the baseline to the new number.
        write_bench_records(&config.current, &[rec("fig9", 105.0, 1)]).unwrap();
        assert!(run(&config).unwrap().passed());
        assert_eq!(
            read_bench_records(&config.baseline).unwrap()[0].wall_ms,
            105.0
        );

        // A 20% regression fails and must NOT touch the baseline.
        write_bench_records(&config.current, &[rec("fig9", 126.0, 1)]).unwrap();
        let report = run(&config).unwrap();
        assert!(!report.passed());
        assert_eq!(
            read_bench_records(&config.baseline).unwrap()[0].wall_ms,
            105.0
        );

        // --no-update: a pass leaves the baseline untouched too.
        let frozen = RegressConfig {
            update: false,
            ..config.clone()
        };
        write_bench_records(&frozen.current, &[rec("fig9", 90.0, 1)]).unwrap();
        assert!(run(&frozen).unwrap().passed());
        assert_eq!(
            read_bench_records(&frozen.baseline).unwrap()[0].wall_ms,
            105.0
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
