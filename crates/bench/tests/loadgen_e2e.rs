//! End-to-end loadgen test: boot a real `gsu-serve` on an ephemeral port,
//! drive it with a short seeded open-loop run gated by a generous SLO
//! document, and confirm the report, the bench records, and the checks all
//! come out as the CI stage expects.

use std::path::{Path, PathBuf};

use gsu_bench::loadgen::{self, LoadgenConfig, Mode};
use gsu_serve::Server;
use telemetry::Collector;

/// Committed scenario catalog, relative to this crate's test CWD.
const SCENARIOS: &str = "../../scenarios";

/// Serializes the two e2e tests: each saturates the box on its own, and
/// quantile assertions are meaningless while another load test is running.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gsu-loadgen-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn open_loop_check_run_against_a_live_server() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector).expect("bind ephemeral port");
    server
        .load_scenarios(Path::new(SCENARIOS))
        .expect("load catalog");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    let dir = temp_dir("open");
    let slo_path = dir.join("SLO.json");
    // A rate well under this box's capacity (the /stats agreement check is
    // only meaningful below saturation) and generous thresholds: this test
    // asserts the machinery, not the latency of a loaded CI box.
    std::fs::write(
        &slo_path,
        r#"{"schema":"gsu-slo-v1","window_s":60,"rate_rps":12,
  "slos":[
    {"endpoint":"/eval","threshold_ms":2000,"target":0.5},
    {"endpoint":"/metrics","threshold_ms":2000,"target":0.5}
  ]}"#,
    )
    .expect("write slo");
    let report_path = dir.join("loadgen.json");
    let bench_path = dir.join("BENCH_serve.json");

    let config = LoadgenConfig {
        addr: addr.to_string(),
        mode: Mode::Open,
        duration_s: 3.0,
        connections: 2,
        seed: 42,
        slo_path: slo_path.clone(),
        scenarios_dir: PathBuf::from(SCENARIOS),
        report_path: Some(report_path.clone()),
        bench_path: Some(bench_path.clone()),
        check: true,
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen run");

    assert_eq!(report.mode, "open");
    assert_eq!(report.rate_rps, 12.0, "rate defaults from the SLO document");
    assert!(
        report.requests > 20,
        "expected traffic, got {}",
        report.requests
    );
    assert_eq!(report.errors, 0, "{}", report.render());
    assert!(
        report.connects <= 4,
        "keep-alive should reuse connections, opened {}",
        report.connects
    );
    assert!(
        report.endpoints.iter().any(|e| e.endpoint == "/eval"),
        "mix must hit /eval"
    );
    assert!(!report.checks.is_empty(), "--check populates checks");
    assert!(report.passed(), "{}", report.render());

    // The written report round-trips and matches what run() returned.
    let written = std::fs::read_to_string(&report_path).expect("report file");
    let parsed = loadgen::parse_report(&written).expect("parse written report");
    assert_eq!(parsed, report);

    // Bench records for the ratchet: one per gated quantile.
    let records = gsu_bench::read_bench_records(&bench_path).expect("bench log");
    for suffix in ["p50", "p99", "p999"] {
        let name = format!("serve:open:{suffix}");
        let record = records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing record {name}"));
        assert!(record.wall_ms > 0.0);
        assert_eq!(record.threads, 2);
        assert_eq!(record.iterations, 0, "latency records skip work ratchet");
    }

    handle.shutdown();
    serving.join().expect("server thread");
    telemetry::clear_sink();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn closed_loop_without_keepalive_reconnects_per_request() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let collector = Collector::install();
    let server = Server::bind("127.0.0.1:0", collector).expect("bind ephemeral port");
    server
        .load_scenarios(Path::new(SCENARIOS))
        .expect("load catalog");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run(2));

    let dir = temp_dir("closed");
    let config = LoadgenConfig {
        addr: addr.to_string(),
        mode: Mode::Closed,
        rate: Some(50.0),
        duration_s: 0.5,
        connections: 2,
        seed: 7,
        keep_alive: false,
        slo_path: dir.join("no-such-SLO.json"),
        scenarios_dir: PathBuf::from(SCENARIOS),
        ..LoadgenConfig::default()
    };
    let report = loadgen::run(&config).expect("loadgen run");

    assert_eq!(report.mode, "closed");
    assert_eq!(report.label, "closed-nokeepalive");
    assert!(report.requests > 0);
    assert_eq!(report.errors, 0, "{}", report.render());
    assert!(
        report.connects >= report.requests,
        "close mode opens a connection per request: {} connects for {} requests",
        report.connects,
        report.requests
    );
    assert!(report.checks.is_empty(), "no --check, no checks");
    assert!(report.passed(), "vacuously true without checks");

    handle.shutdown();
    serving.join().expect("server thread");
    telemetry::clear_sink();
    let _ = std::fs::remove_dir_all(&dir);
}
