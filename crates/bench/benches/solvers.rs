//! Criterion benchmarks for the Markov solver layer: transient engines at
//! increasing stiffness, steady-state methods, and the Poisson window
//! computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use markov::fox_glynn::PoissonWindow;
use markov::steady::{steady_state, SteadyMethod};
use markov::transient::{self, Method, Options};
use markov::Ctmc;
use sparsela::iterative::IterOptions;

/// Birth-death chain with `n` states and tunable rates.
fn birth_death(n: usize, up: f64, down: f64) -> Ctmc {
    let mut t = Vec::with_capacity(2 * n);
    for i in 0..n - 1 {
        t.push((i, i + 1, up));
        t.push((i + 1, i, down));
    }
    Ctmc::from_transitions(n, t).expect("valid chain")
}

fn bench_transient_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("transient_distribution");
    let n = 40;
    let chain = birth_death(n, 2.0, 3.0);
    let pi0 = chain.point_distribution(0);
    // Λt spans non-stiff to stiff.
    for &t in &[10.0, 1000.0, 100_000.0] {
        let uni = Options {
            method: Method::Uniformization,
            max_uniformization_steps: 100_000_000,
            ..Default::default()
        };
        let exp = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("uniformization", t as u64), &t, |b, &t| {
            b.iter(|| transient::distribution(&chain, &pi0, t, &uni).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("expm", t as u64), &t, |b, &t| {
            b.iter(|| transient::distribution(&chain, &pi0, t, &exp).unwrap())
        });
    }
    group.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulated_occupancy");
    let chain = birth_death(30, 1.0, 2.0);
    let pi0 = chain.point_distribution(0);
    for &t in &[10.0, 10_000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(t as u64), &t, |b, &t| {
            b.iter(|| transient::occupancy(&chain, &pi0, t, &Options::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_steady_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    let chain = birth_death(100, 1.0, 1.2);
    let methods: Vec<(&str, SteadyMethod)> = vec![
        ("direct_lu", SteadyMethod::Direct),
        (
            "gauss_seidel",
            SteadyMethod::GaussSeidel {
                options: IterOptions::default(),
            },
        ),
        (
            "sor_1.5",
            SteadyMethod::Sor {
                options: IterOptions {
                    relaxation: 1.5,
                    ..IterOptions::default()
                },
            },
        ),
        (
            "power",
            SteadyMethod::Power {
                max_iterations: 1_000_000,
                tolerance: 1e-12,
            },
        ),
    ];
    for (name, method) in methods {
        group.bench_function(name, |b| b.iter(|| steady_state(&chain, &method).unwrap()));
    }
    group.finish();
}

fn bench_fox_glynn(c: &mut Criterion) {
    let mut group = c.benchmark_group("poisson_window");
    for &lambda in &[10.0, 1e4, 1e7] {
        group.bench_with_input(
            BenchmarkId::from_parameter(lambda as u64),
            &lambda,
            |b, &l| b.iter(|| PoissonWindow::compute(l, 1e-12).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transient_engines,
    bench_occupancy,
    bench_steady_methods,
    bench_fox_glynn
);
criterion_main!(benches);
