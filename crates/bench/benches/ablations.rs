//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **translation vs monolithic**: the paper's whole point — solving `Y`
//!   through the translated constituent measures versus estimating it from
//!   a monolithic simulation of the full process `X`;
//! * **uniformization vs matrix exponential** across stiffness, including
//!   the Fox–Glynn window against naive per-term Poisson evaluation;
//! * **vanishing elimination vs stiff timed approximation** of
//!   instantaneous activities;
//! * **steady-state method** choice on the actual `RMGp` chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use markov::fox_glynn::{poisson_pmf, PoissonWindow};
use markov::steady::{steady_state, SteadyMethod};
use markov::transient::{self, Method, Options};
use mdcd_sim::estimate_y;
use performability::gsu::rmgp;
use performability::{GsuAnalysis, GsuParams};
use san::{Activity, Analyzer, RewardSpec, SanModel, StateSpace};
use sparsela::iterative::IterOptions;

/// The paper's headline ablation: translated reward-model solution of Y
/// versus Monte-Carlo on the untranslated process.
fn ablation_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_translation");
    group.sample_size(10);
    let params = GsuParams::paper_baseline();
    group.bench_function("translated_reward_models", |b| {
        // Includes model construction, so the comparison is end to end.
        b.iter(|| {
            let analysis = GsuAnalysis::new(params).unwrap();
            analysis.evaluate(7000.0).unwrap()
        })
    });
    group.bench_function("monolithic_simulation_3000reps", |b| {
        b.iter(|| estimate_y(params, 7000.0, 3000, 99).unwrap())
    });
    group.finish();
}

fn ablation_uniformization(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_uniformization");
    // Two-state chain: stiffness is purely in Λt.
    let chain = markov::Ctmc::from_transitions(2, [(0, 1, 100.0), (1, 0, 150.0)]).unwrap();
    let pi0 = [1.0, 0.0];
    for &t in &[1.0, 100.0, 10_000.0] {
        let uni = Options {
            method: Method::Uniformization,
            max_uniformization_steps: 100_000_000,
            steady_state_detection: false,
            ..Default::default()
        };
        let exp = Options {
            method: Method::MatrixExponential,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("uniformization", (t * 250.0) as u64),
            &t,
            |b, &t| b.iter(|| transient::distribution(&chain, &pi0, t, &uni).unwrap()),
        );
        group.bench_with_input(BenchmarkId::new("expm", (t * 250.0) as u64), &t, |b, &t| {
            b.iter(|| transient::distribution(&chain, &pi0, t, &exp).unwrap())
        });
    }
    // Fox–Glynn window versus naive per-term pmf evaluation over the window.
    for &lambda in &[1e3, 1e5] {
        group.bench_with_input(
            BenchmarkId::new("fox_glynn_window", lambda as u64),
            &lambda,
            |b, &l| b.iter(|| PoissonWindow::compute(l, 1e-12).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_pmf_window", lambda as u64),
            &lambda,
            |b, &l| {
                b.iter(|| {
                    let w = PoissonWindow::compute(l, 1e-12).unwrap();
                    (w.left..=w.right).map(|k| poisson_pmf(l, k)).sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

/// Instantaneous branching via vanishing elimination versus modelling the
/// same branch with a very fast timed activity (which leaves the "vanishing"
/// states in the chain and makes it stiff).
fn ablation_vanishing(c: &mut Criterion) {
    fn branching_model(instantaneous: bool) -> SanModel {
        let mut m = SanModel::new("branch");
        let pool = m.add_place("pool", 3);
        let mid = m.add_place("mid", 0);
        let a = m.add_place("a", 0);
        let b = m.add_place("b", 0);
        m.add_activity(
            Activity::timed("work", 1.0)
                .with_input_arc(pool, 1)
                .with_output_arc(mid, 1),
        )
        .unwrap();
        let branch = if instantaneous {
            Activity::instantaneous("branch")
        } else {
            // 10^6 times faster than `work`: behaviourally equivalent,
            // numerically stiff.
            Activity::timed("branch", 1e6)
        };
        m.add_activity(
            branch
                .with_input_arc(mid, 1)
                .with_case(san::Case::with_probability(0.4).with_output_arc(a, 1))
                .with_case(san::Case::with_probability(0.6).with_output_arc(b, 1)),
        )
        .unwrap();
        // Recycle so the chain is irreducible.
        m.add_activity(
            Activity::timed("recycle_a", 0.5)
                .with_input_arc(a, 1)
                .with_output_arc(pool, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::timed("recycle_b", 0.5)
                .with_input_arc(b, 1)
                .with_output_arc(pool, 1),
        )
        .unwrap();
        m
    }

    let mut group = c.benchmark_group("ablation_vanishing");
    for (name, inst) in [("eliminated", true), ("stiff_timed", false)] {
        group.bench_function(format!("generate_{name}"), |b| {
            let m = branching_model(inst);
            b.iter(|| StateSpace::generate(&m, &Default::default()).unwrap())
        });
        group.bench_function(format!("transient_{name}"), |b| {
            let m = branching_model(inst);
            let analyzer = Analyzer::generate(&m, &Default::default()).unwrap();
            let pool = m.find_place("pool").unwrap();
            let spec = RewardSpec::new().rate_fn(|_| true, move |mk| mk.tokens(pool) as f64);
            b.iter(|| analyzer.instant_reward(&spec, 5.0).unwrap())
        });
    }
    group.finish();
}

fn ablation_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_steady_rmgp");
    let params = GsuParams::paper_baseline();
    let model = rmgp::build(&params).unwrap();
    let ss = StateSpace::generate(&model.model, &Default::default()).unwrap();
    let methods: Vec<(&str, SteadyMethod)> = vec![
        ("direct_lu", SteadyMethod::Direct),
        (
            "gauss_seidel",
            SteadyMethod::GaussSeidel {
                options: IterOptions::default(),
            },
        ),
        (
            "sor_1.3",
            SteadyMethod::Sor {
                options: IterOptions {
                    relaxation: 1.3,
                    ..IterOptions::default()
                },
            },
        ),
        (
            "power",
            SteadyMethod::Power {
                max_iterations: 10_000_000,
                tolerance: 1e-12,
            },
        ),
    ];
    for (name, method) in methods {
        group.bench_function(name, |b| {
            b.iter(|| steady_state(ss.ctmc(), &method).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_translation,
    ablation_uniformization,
    ablation_vanishing,
    ablation_steady
);
criterion_main!(benches);
