//! Criterion benchmarks for the end-to-end performability pipeline: model
//! construction, single-φ evaluation, full figure sweeps, and the
//! simulation engines.

use criterion::{criterion_group, criterion_main, Criterion};
use mdcd_sim::{calibrate, simulate_run, simulate_run_hybrid, SimConfig, SimRng};
use performability::{GsuAnalysis, GsuParams};

fn bench_analysis_construction(c: &mut Criterion) {
    let params = GsuParams::paper_baseline();
    let mut group = c.benchmark_group("pipeline_setup");
    group.sample_size(20);
    group.bench_function("gsu_analysis_new", |b| {
        b.iter(|| GsuAnalysis::new(params).unwrap())
    });
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params).unwrap();
    let mut group = c.benchmark_group("pipeline_evaluation");
    group.sample_size(20);
    group.bench_function("evaluate_phi_7000", |b| {
        b.iter(|| analysis.evaluate(7000.0).unwrap())
    });
    group.bench_function("figure_sweep_11_points", |b| {
        b.iter(|| analysis.sweep_grid(10).unwrap())
    });
    let grid: Vec<f64> = (0..=10).map(|i| 1000.0 * i as f64).collect();
    group.bench_function("figure_sweep_11_points_incremental", |b| {
        b.iter(|| analysis.sweep_incremental(&grid).unwrap())
    });
    let dense: Vec<f64> = (0..=100).map(|i| 100.0 * i as f64).collect();
    group.bench_function("dense_sweep_101_points_incremental", |b| {
        b.iter(|| analysis.sweep_incremental(&dense).unwrap())
    });
    group.bench_function("optimal_phi_search", |b| {
        b.iter(|| analysis.optimal_phi(10, 8).unwrap())
    });
    group.finish();
}

fn bench_simulation_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    // Scaled-down scenario for the exact engine.
    let small = GsuParams {
        theta: 50.0,
        lambda: 40.0,
        mu_new: 0.02,
        mu_old: 1e-7,
        coverage: 0.95,
        p_ext: 0.1,
        alpha: 200.0,
        beta: 200.0,
    };
    let small_cfg = SimConfig::new(small, 30.0).unwrap();
    group.bench_function("exact_run_scaled", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = SimRng::stream(1, seed);
            simulate_run(&small_cfg, &mut rng)
        })
    });

    // Mission-scale scenario for the hybrid engine.
    let paper = GsuParams::paper_baseline();
    let cfg = SimConfig::new(paper, 7000.0).unwrap();
    let mut cal_rng = SimRng::from_seed(5);
    let cal = calibrate(&paper, 40_000, &mut cal_rng);
    group.bench_function("hybrid_run_mission_scale", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            let mut rng = SimRng::stream(2, seed);
            simulate_run_hybrid(&cfg, &cal, &mut rng)
        })
    });
    group.bench_function("calibration_40k_events", |b| {
        b.iter(|| {
            let mut rng = SimRng::from_seed(6);
            calibrate(&paper, 40_000, &mut rng)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis_construction,
    bench_evaluation,
    bench_simulation_engines
);
criterion_main!(benches);
