//! Criterion benchmarks for SAN state-space generation: the three GSU
//! reward models and a scalable synthetic SAN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use performability::gsu::{rmgd, rmgp, rmnd};
use performability::GsuParams;
use san::{Activity, SanModel, StateSpace};

fn bench_gsu_models(c: &mut Criterion) {
    let params = GsuParams::paper_baseline();
    let mut group = c.benchmark_group("gsu_model_generation");
    group.bench_function("rmgd", |b| {
        b.iter(|| {
            let m = rmgd::build(&params).unwrap();
            StateSpace::generate(&m.model, &Default::default()).unwrap()
        })
    });
    group.bench_function("rmgp", |b| {
        b.iter(|| {
            let m = rmgp::build(&params).unwrap();
            StateSpace::generate(&m.model, &Default::default()).unwrap()
        })
    });
    group.bench_function("rmnd", |b| {
        b.iter(|| {
            let m = rmnd::build(&params, params.mu_new).unwrap();
            StateSpace::generate(&m.model, &Default::default()).unwrap()
        })
    });
    group.finish();
}

/// Tandem queueing network with `stations` stations of capacity `cap`:
/// state count (cap+1)^stations — a knob for reachability scaling.
fn tandem(stations: usize, cap: u32) -> SanModel {
    let mut m = SanModel::new("tandem");
    let queues: Vec<_> = (0..stations)
        .map(|i| m.add_place(format!("q{i}"), 0))
        .collect();
    let first = queues[0];
    m.add_activity(
        Activity::timed("arrive", 1.0)
            .with_enabling(move |mk| mk.tokens(first) < cap)
            .with_output_arc(first, 1),
    )
    .unwrap();
    for i in 0..stations {
        let from = queues[i];
        let act = Activity::timed(format!("serve{i}"), 2.0).with_input_arc(from, 1);
        let act = if i + 1 < stations {
            let to = queues[i + 1];
            act.with_output_arc(to, 1)
                .with_enabling(move |mk| mk.tokens(to) < cap)
        } else {
            act
        };
        m.add_activity(act).unwrap();
    }
    m
}

fn bench_tandem_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("tandem_reachability");
    group.sample_size(20);
    for &(stations, cap) in &[(3usize, 4u32), (4, 4), (5, 4)] {
        let states = (cap as usize + 1).pow(stations as u32);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{stations}x{cap}_{states}states")),
            &(stations, cap),
            |b, &(s, k)| {
                let m = tandem(s, k);
                b.iter(|| StateSpace::generate(&m, &Default::default()).unwrap())
            },
        );
    }
    group.finish();
}

/// Composed machine-repairman models: reachability scaling of the
/// Rep/Join operator output.
fn bench_composed_repairman(c: &mut Criterion) {
    use san::compose::Composer;

    fn build(n: usize) -> SanModel {
        let mut composer = Composer::new("repairman");
        composer.shared_place("crew", 1);
        composer
            .replicate("m", n, |scope, _| {
                let up = scope.add_place("up", 1);
                let down = scope.add_place("down", 0);
                let in_repair = scope.add_place("in_repair", 0);
                let crew = scope.shared("crew")?;
                scope.add_activity(
                    Activity::timed("fail", 0.1)
                        .with_input_arc(up, 1)
                        .with_output_arc(down, 1),
                )?;
                scope.add_activity(
                    Activity::instantaneous("grab")
                        .with_input_arc(down, 1)
                        .with_input_arc(crew, 1)
                        .with_output_arc(in_repair, 1),
                )?;
                scope.add_activity(
                    Activity::timed("repair", 1.0)
                        .with_input_arc(in_repair, 1)
                        .with_output_arc(up, 1)
                        .with_output_arc(crew, 1),
                )?;
                Ok(())
            })
            .unwrap();
        composer.finish()
    }

    let mut group = c.benchmark_group("composed_repairman");
    group.sample_size(20);
    for n in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let m = build(n);
            b.iter(|| StateSpace::generate(&m, &Default::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gsu_models,
    bench_tandem_scaling,
    bench_composed_repairman
);
criterion_main!(benches);
