//! Workspace-local stand-in for the `proptest` crate.
//!
//! The crates.io registry is unreachable in the offline build environments
//! this workspace targets, so the slice of `proptest` 1.x the workspace
//! actually uses is reimplemented here on pure `std`:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric ranges,
//!   tuples, and [`collection::vec`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case panics with the sampled inputs' message
//! instead of a minimized counterexample. Sampling is deterministic per test
//! name, so failures reproduce across runs.

#![forbid(unsafe_code)]

/// Test-runner plumbing used by the macros.
pub mod test_runner {
    /// Run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the suite fast while still
            // exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert!`-family failure; the test panics.
        Fail(String),
    }

    /// Deterministic generator behind strategy sampling (SplitMix64 seeded
    /// from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an identifying string (the test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy is
    /// just a deterministic sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start + rng.below(span) as $t
                }
            }
        )+};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! signed_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = self.end.wrapping_sub(self.start) as u64;
                    assert!(span > 0, "empty integer range strategy");
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )+};
    }

    signed_range_strategy!(i64, i32);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Admissible lengths for [`vec`]: either an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec-length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.max - self.size.min <= 1 {
                self.size.min
            } else {
                self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn name(x in 0.0..1.0f64, n in 0usize..10) { prop_assert!(x < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1000);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({} attempts for {} cases)",
                        stringify!($name),
                        attempts,
                        config.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed on case {}: {}",
                                stringify!($name),
                                passed + 1,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
}

/// Skips the current case (without counting it) when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn shifted(offset: f64) -> impl Strategy<Value = f64> {
        (0.0..1.0f64).prop_map(move |x| x + offset)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 2usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((2..9).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in collection::vec(0.0..1.0f64, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn exact_vec_length(v in collection::vec((0usize..4, -1.0..1.0f64), 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn prop_map_applies(y in shifted(10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0..1.0f64) {
            prop_assume!(x > 0.25);
            prop_assert!(x > 0.25);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("case");
        let mut b = TestRng::deterministic("case");
        let strat = (0.0..1.0f64, 0u64..100);
        for _ in 0..32 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
