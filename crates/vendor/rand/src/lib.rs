//! Workspace-local stand-in for the `rand` crate.
//!
//! The crates.io registry is unreachable in the offline build environments
//! this workspace targets, so the small slice of `rand` 0.8 the workspace
//! actually uses is reimplemented here on pure `std`: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen`] for the primitive types
//! the simulator draws. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, exactly what the
//! reproducible-experiment harness needs. It is **not** the same stream as
//! upstream `StdRng` (ChaCha12), which no test or experiment relies on.

#![forbid(unsafe_code)]

/// Random number generators.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Conversion of raw generator output into a sample of `Self`.
///
/// Sealed stand-in for `rand::distributions::Standard` sampling; implemented
/// for the primitive types the workspace draws.
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Sample for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Draws one value of type `T`.
    fn gen<T: Sample>(&mut self) -> T;
}

impl Rng for rngs::StdRng {
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut z = seed;
        let mut next = || {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        };
        let s = [next(), next(), next(), next()];
        rngs::StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        // Mean of Uniform[0,1) over 10k draws.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
