//! Workspace-local stand-in for the `criterion` crate.
//!
//! The crates.io registry is unreachable in the offline build environments
//! this workspace targets, so the benchmark harness API the workspace uses
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) is reimplemented
//! here on pure `std`. Measurement is intentionally simple — median of a
//! fixed number of timed samples after a short warm-up — adequate for the
//! relative comparisons the `gsu-bench` benches make, with none of
//! upstream's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 30,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), 30, &mut f);
        self.benchmarks_run += 1;
        self
    }

    /// Prints the closing summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.benchmarks_run);
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timer handed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples after a
    /// short warm-up.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: run a few iterations so lazy initialization and cache
        // effects don't dominate the first sample.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<56} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{label:<56} median {:>12?}  (min {min:?}, max {max:?}, n={})",
        median,
        bencher.samples.len()
    );
}

/// Declares a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs >= 5);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }
}
