//! Quickstart: evaluate the performability index `Y(φ)` for the paper's
//! baseline scenario and find the optimal guarded-operation duration.
//!
//! Run with: `cargo run --release --example quickstart`

use guarded_upgrade::prelude::*;

fn main() -> Result<(), PerfError> {
    // Table 3 of the paper: θ=10000 h, λ=1200/h, µnew=1e-4, µold=1e-8,
    // c=0.95, p_ext=0.1, α=β=6000/h.
    let params = GsuParams::paper_baseline();
    println!("parameters: {params}");

    // Building the analysis constructs and solves the three SAN reward
    // models (RMGd, RMGp, RMNd).
    let analysis = GsuAnalysis::new(params)?;
    let (rho1, rho2) = analysis.rho();
    println!("forward-progress fractions from RMGp: ρ1 = {rho1:.4}, ρ2 = {rho2:.4}");

    // Evaluate a few candidate durations.
    println!("\n φ        Y(φ)");
    for phi in [0.0, 2500.0, 5000.0, 7500.0, 10_000.0] {
        let point = analysis.evaluate(phi)?;
        println!("{:>6.0}  {:.4}", phi, point.y);
    }

    // And search for the optimum.
    let best = analysis.optimal_phi(10, 16)?;
    println!(
        "\noptimal guarded-operation duration: φ* ≈ {:.0} h with Y = {:.4}",
        best.phi, best.y
    );
    println!("(the paper reports φ* = 7000 h for this setting)");

    // Every intermediate quantity of the translated measure is exposed:
    println!("\nconstituent measures at the optimum:\n{}", best.measures);
    Ok(())
}
