//! Using the general SAN toolkit beyond the GSU study: a duplex
//! fault-tolerant controller with imperfect coverage and repair, modelled as
//! a stochastic activity network and solved with the three UltraSAN-style
//! reward variables.
//!
//! System: two redundant controllers. Faults arrive per controller; a fault
//! is caught by the voter with probability `coverage` (the failed unit goes
//! to repair) and otherwise crashes the *system* (absorbing until a system
//! reboot). One repair crew; repaired units rejoin.
//!
//! Run with: `cargo run --release --example custom_san`

use guarded_upgrade::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fault_rate = 0.02; // per controller-hour
    let repair_rate = 0.5; // repairs per hour
    let reboot_rate = 0.1; // system reboots per hour
    let coverage = 0.98;

    let mut m = SanModel::new("duplex-controller");
    let up = m.add_place("up", 2); // healthy controllers
    let repairing = m.add_place("repairing", 0); // units at the repair crew
    let crashed = m.add_place("crashed", 0); // uncovered system crash

    // A fault on any healthy unit: rate scales with the number of
    // operational units (marking-dependent rate), with two probabilistic
    // cases for covered / uncovered outcomes.
    let og_crash = m.add_output_gate("crash", move |mk| {
        mk.set_tokens(crashed, 1);
    });
    m.add_activity(
        Activity::timed_fn("fault", move |mk| fault_rate * mk.tokens(up) as f64)
            .with_enabling(move |mk| mk.tokens(crashed) == 0 && mk.tokens(up) > 0)
            .with_input_arc(up, 1)
            .with_case(Case::with_probability(coverage).with_output_arc(repairing, 1))
            .with_case(Case::with_probability(1.0 - coverage).with_output_gate(og_crash)),
    )?;
    // Single repair crew: fixed rate regardless of queue length.
    m.add_activity(
        Activity::timed("repair", repair_rate)
            .with_enabling(move |mk| mk.tokens(crashed) == 0)
            .with_input_arc(repairing, 1)
            .with_output_arc(up, 1),
    )?;
    // A crash loses the in-repair units too: reboot restores the full
    // duplex.
    let og_reboot = m.add_output_gate("reboot", move |mk| {
        mk.set_tokens(crashed, 0);
        mk.set_tokens(repairing, 0);
        mk.set_tokens(up, 2);
    });
    m.add_activity(
        Activity::timed("reboot", reboot_rate)
            .with_enabling(move |mk| mk.tokens(crashed) == 1)
            .with_output_gate(og_reboot),
    )?;

    println!("{m}");
    let analyzer = Analyzer::generate(&m, &Default::default())?;
    println!(
        "tangible state space: {} states",
        analyzer.state_space().n_states()
    );

    // Reward variable 1: instant-of-time availability (≥1 controller up,
    // not crashed).
    let available =
        RewardSpec::new().rate_when(move |mk| mk.tokens(up) >= 1 && mk.tokens(crashed) == 0, 1.0);
    println!("\navailability over time:");
    for t in [1.0, 10.0, 100.0] {
        println!(
            "  A({t:>5}) = {:.6}",
            analyzer.instant_reward(&available, t)?
        );
    }
    let steady = analyzer.steady_reward(&available)?;
    println!("  A(∞)    = {steady:.6}");

    // Reward variable 2: accumulated downtime over a 1000-hour mission.
    let downtime =
        RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 0 || mk.tokens(crashed) == 1, 1.0);
    let hours = analyzer.accumulated_reward(&downtime, 1000.0)?;
    println!("\nexpected downtime over 1000 h: {hours:.3} h");

    // Reward variable 3: steady-state performance level — a degradable
    // "reward rate" of 1.0 duplex / 0.6 simplex / 0 crashed.
    let perf = RewardSpec::new()
        .rate_when(move |mk| mk.tokens(up) == 2, 1.0)
        .rate_when(move |mk| mk.tokens(up) == 1 && mk.tokens(crashed) == 0, 0.6);
    println!(
        "steady-state performance level: {:.4} (1.0 = full duplex)",
        analyzer.steady_reward(&perf)?
    );
    Ok(())
}
