//! Cross-checking the analytic model-translation pipeline against the MDCD
//! protocol simulator, and inspecting individual sample paths.
//!
//! Run with: `cargo run --release --example simulation_validation`

use guarded_upgrade::prelude::*;
use mdcd_sim::simulate_run;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GsuParams::paper_baseline();
    let phi = 7000.0;

    // Analytic side.
    let analysis = GsuAnalysis::new(params)?;
    let analytic = analysis.evaluate(phi)?;
    println!(
        "analytic:  Y({phi}) = {:.4} (γ = {:.3})",
        analytic.y, analytic.gamma
    );

    // Simulation side, using the same (constant) γ convention as the
    // analytic pipeline for a like-for-like comparison.
    let cfg = SimConfig::new(params, phi)?.with_gamma(GammaMode::Constant(analytic.gamma));
    let guarded = MonteCarlo::new(cfg)
        .with_replications(4000)
        .with_seed(17)
        .run();
    let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0)?)
        .with_replications(4000)
        .with_seed(18)
        .run();
    let ideal = 2.0 * params.theta;
    let y_sim = (ideal - unguarded.mean_worth) / (ideal - guarded.mean_worth);
    println!(
        "simulated: Y({phi}) = {y_sim:.4}  (E[Wφ] = {:.0} ± {:.0}, E[W0] = {:.0} ± {:.0})",
        guarded.mean_worth,
        guarded.worth_half_width_95,
        unguarded.mean_worth,
        unguarded.worth_half_width_95
    );
    println!(
        "sample-path classes: S1 {:.3}, S2 {:.3}, S3 {:.3}",
        guarded.p_s1, guarded.p_s2, guarded.p_s3
    );
    if let Some(tau) = guarded.mean_detection_time {
        println!("mean detection time among S2 paths: {tau:.0} h");
    }

    // A few individual sample paths from the event-exact engine on a
    // scaled-down scenario (the exact engine simulates every message).
    println!("\nindividual sample paths (exact engine, scaled scenario θ=50 h):");
    let small = GsuParams {
        theta: 50.0,
        lambda: 40.0,
        mu_new: 0.02,
        mu_old: 1e-7,
        coverage: 0.95,
        p_ext: 0.1,
        alpha: 200.0,
        beta: 200.0,
    };
    let small_cfg = SimConfig::new(small, 30.0)?;
    for seed in 0..8 {
        let mut rng = SimRng::from_seed(seed);
        let out = simulate_run(&small_cfg, &mut rng);
        println!(
            "  seed {seed}: {:?} worth {:>6.1}  (ATs {:>4}, checkpoints {:>3}{}{})",
            out.class,
            out.worth,
            out.at_count,
            out.checkpoint_count,
            out.detection_time
                .map(|t| format!(", detected at {t:.1} h"))
                .unwrap_or_default(),
            out.failure_time
                .map(|t| format!(", failed at {t:.1} h"))
                .unwrap_or_default(),
        );
    }
    Ok(())
}
