//! Generalizing the normal-mode model to N processes with the SAN
//! composition operators — the direction of the paper's footnote 1 /
//! ref [16] ("a more general class of distributed embedded systems").
//!
//! Each of N application processes can be contaminated by its own latent
//! fault; a contaminated process's external messages crash the mission and
//! its internal messages contaminate a peer (uniformly chosen). The example
//! builds the N-process model with `Composer::replicate` + shared
//! contamination places, solves the unprotected survival probability
//! `P(X''_θ ∈ A''1)` as N grows, and shows how quickly an unguarded upgrade
//! becomes untenable at scale.
//!
//! Run with: `cargo run --release --example distributed_gsu`

use guarded_upgrade::prelude::*;
use san::compose::Composer;

/// Builds the N-process normal-mode model. Process 0 runs the freshly
/// upgraded component (rate `mu_new`); the rest run proven software
/// (`mu_old`).
fn build_n_process(
    n: usize,
    lambda: f64,
    p_ext: f64,
    mu_new: f64,
    mu_old: f64,
) -> Result<(SanModel, san::PlaceId), Box<dyn std::error::Error>> {
    assert!(n >= 2, "need at least two processes");
    let mut composer = Composer::new(format!("rmnd-{n}"));
    let failure = composer.shared_place("failure", 0);
    let ctn: Vec<_> = (0..n)
        .map(|i| composer.shared_place(format!("ctn{i}"), 0))
        .collect();

    for i in 0..n {
        let mu = if i == 0 { mu_new } else { mu_old };
        let my_ctn = ctn[i];
        let peers: Vec<_> = (0..n).filter(|&j| j != i).map(|j| ctn[j]).collect();
        composer.add_submodel(format!("p{i}"), |scope| {
            let failure = scope.shared("failure")?;
            scope.add_activity(
                Activity::timed("fm", mu)
                    .with_enabling(move |mk| mk.tokens(failure) == 0 && mk.tokens(my_ctn) == 0)
                    .with_output_arc(my_ctn, 1),
            )?;
            // Messages from a contaminated process: external ones fail the
            // system; internal ones contaminate a uniformly chosen peer.
            let og_fail = scope.add_output_gate("fail", move |mk| {
                mk.set_tokens(failure, 1);
                // Canonicalize: contamination no longer matters.
            });
            let mut msg = Activity::timed("msg", lambda)
                .with_enabling(move |mk| mk.tokens(failure) == 0 && mk.tokens(my_ctn) == 1)
                .with_case(Case::with_probability(p_ext).with_output_gate(og_fail));
            let peer_prob = (1.0 - p_ext) / peers.len() as f64;
            for (k, &peer) in peers.iter().enumerate() {
                // Set (not increment) the peer's contamination bit.
                let og =
                    scope.add_output_gate(format!("infect{k}"), move |mk| mk.set_tokens(peer, 1));
                msg = msg.with_case(Case::with_probability(peer_prob).with_output_gate(og));
            }
            scope.add_activity(msg)?;
            Ok(())
        })?;
    }
    Ok((composer.finish(), failure))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GsuParams::paper_baseline();
    println!(
        "unprotected survival of an N-process system over θ = {} h",
        params.theta
    );
    println!(
        "(process 0 freshly upgraded at µnew = {:.0e}; others at µold = {:.0e})\n",
        params.mu_new, params.mu_old
    );
    println!(
        "{:>4} {:>10} {:>14} {:>16}",
        "N", "states", "P(survive θ)", "worth fraction"
    );
    for n in [2usize, 3, 4, 5, 6] {
        let (model, failure) =
            build_n_process(n, params.lambda, params.p_ext, params.mu_new, params.mu_old)?;
        let analyzer = Analyzer::generate(&model, &Default::default())?;
        let survive = analyzer.probability_at(params.theta, move |mk| mk.tokens(failure) == 0)?;
        println!(
            "{n:>4} {:>10} {:>14.4} {:>16.4}",
            analyzer.state_space().n_states(),
            survive,
            survive // worth accrues only if no failure (Eq. 3 generalized)
        );
    }
    println!("\nSurvival is dominated by the upgraded component (µnew ≫ µold), so the");
    println!("N-process survival stays ≈ exp(−µnew·θ): the *guard* is what must scale,");
    println!("not the exposure — the motivation for the generalized MDCD of ref [16].");
    Ok(())
}
