//! Mission-planning scenario: decide how long to escort an in-flight
//! software upgrade, for two candidate upgrade maturities and two mission
//! phases.
//!
//! A flight-software team has a new attitude-control component ready. The
//! onboard-validation phase produced two possible quality estimates
//! (fault-manifestation rates), and mission planning is considering both a
//! long cruise phase (θ = 10000 h) and a shorter one before an encounter
//! (θ = 5000 h). For each combination the team wants the optimal guarded
//! duration φ*, the achievable degradation reduction Y, and whether the
//! guard is worth its overhead at all.
//!
//! Run with: `cargo run --release --example mission_planning`

use guarded_upgrade::prelude::*;

fn main() -> Result<(), PerfError> {
    let base = GsuParams::paper_baseline();

    println!("candidate upgrade maturities and mission phases:");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "θ (h)", "µnew", "φ* (h)", "Y(φ*)", "P(S1) @ φ*", "recommend?"
    );

    for theta in [10_000.0, 5_000.0] {
        for mu_new in [1e-4, 5e-5] {
            let params = base.with_theta(theta)?.with_mu_new(mu_new)?;
            let analysis = GsuAnalysis::new(params)?;
            let best = analysis.optimal_phi(20, 16)?;
            // Probability the upgrade completes without any error.
            let p_s1 = best.measures.p_a1_gop * best.measures.p_a1_norm_rem;
            // A guard is recommended when it reduces expected degradation
            // by a meaningful margin (here: 5%).
            let recommend = if best.y > 1.05 {
                format!("guard {:.0} h", best.phi)
            } else {
                "skip the guard".to_string()
            };
            println!(
                "{:>10.0} {:>10.0e} {:>10.0} {:>10.4} {:>12.4} {:>14}",
                theta, mu_new, best.phi, best.y, p_s1, recommend
            );
        }
    }

    // Sensitivity: how much does getting φ wrong cost?
    println!("\nsensitivity of Y to mis-chosen φ (θ=10000, µnew=1e-4):");
    let analysis = GsuAnalysis::new(base)?;
    let best = analysis.optimal_phi(20, 16)?;
    for factor in [0.25, 0.5, 1.0, 1.5] {
        let phi = (best.phi * factor).min(base.theta);
        let point = analysis.evaluate(phi)?;
        println!(
            "  φ = {:>7.0} ({}x φ*): Y = {:.4} ({:+.1}% vs optimum)",
            phi,
            factor,
            point.y,
            (point.y / best.y - 1.0) * 100.0
        );
    }

    // What the escort actually costs: worth accounting at the optimum.
    let pt = analysis.evaluate(best.phi)?;
    println!("\nworth accounting at φ* = {:.0}:", best.phi);
    println!(
        "  ideal mission worth        2θ     = {:.0} process-hours",
        2.0 * base.theta
    );
    println!("  expected worth, unguarded  E[W0]  = {:.0}", pt.e_w0);
    println!("  expected worth, guarded    E[Wφ]  = {:.0}", pt.e_w_phi);
    println!("    from successful upgrades (S1)   = {:.0}", pt.y_s1);
    println!(
        "    from safe downgrades     (S2)   = {:.0} (discount γ = {:.3})",
        pt.y_s2, pt.gamma
    );
    Ok(())
}
