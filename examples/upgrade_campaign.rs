//! The full guarded-software-upgrading lifecycle of the paper's Figure 1,
//! end to end:
//!
//! 1. **Onboard validation** (shadow-mode execution): the new version's
//!    error log drives Bayesian estimation of its fault-manifestation rate,
//!    with a Littlewood–Wright stopping rule deciding when (whether) the
//!    upgrade may enter mission operation.
//! 2. **Duration decision**: the posterior feeds the performability
//!    pipeline — plug-in, posterior-predictive, and robust (upper-credible)
//!    optimal guarded-operation durations.
//! 3. **Guarded operation**: the chosen φ is played out in the MDCD
//!    protocol simulator to estimate the realized mission worth.
//!
//! Run with: `cargo run --release --example upgrade_campaign`

use guarded_upgrade::prelude::*;
use mdcd_sim::shadow;
use performability::validation::{
    posterior_predictive_y, robust_optimal_phi, FaultRatePosterior, StoppingRule,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The flight software team's ground truth (unknown to the analyst):
    let mu_true = 8e-5;

    // --- Stage 1: onboard validation ---------------------------------------
    println!("=== Stage 1: onboard validation (shadow mode) ===");
    let prior = FaultRatePosterior::weakly_informative(1e-4)?;
    let rule = StoppingRule::new(2e-4, 0.95)?;
    let mut rng = SimRng::from_seed(2026);
    let outcome = shadow::run_until_admitted(mu_true, prior, &rule, 2_500.0, 40_000.0, &mut rng)?;
    println!(
        "observed {} manifestation(s) over {:.0} h of shadow execution",
        outcome.faults, outcome.exposure
    );
    println!(
        "posterior: mean µ = {:.2e}, 90% credible upper bound = {:.2e}",
        outcome.posterior.mean(),
        outcome.posterior.quantile(0.9)
    );
    println!(
        "stopping rule P[µ ≤ {:.0e}] ≥ {:.0}%: {}",
        rule.target_rate,
        rule.confidence * 100.0,
        if outcome.admitted {
            "ADMITTED to mission operation"
        } else {
            "REFUSED"
        }
    );
    if !outcome.admitted {
        println!("upgrade rejected — mission continues on the old version");
        return Ok(());
    }

    // --- Stage 2: guarded-operation duration decision ----------------------
    println!("\n=== Stage 2: choosing the guarded-operation duration ===");
    let base = GsuParams::paper_baseline();
    let plugin_params = base.with_mu_new(outcome.posterior.mean())?;
    let plugin = GsuAnalysis::new(plugin_params)?.optimal_phi(10, 12)?;
    println!(
        "plug-in (posterior mean):      φ* = {:>6.0} h, Y = {:.4}",
        plugin.phi, plugin.y
    );
    let robust = robust_optimal_phi(&outcome.posterior, base, 0.9, 10, 12)?;
    println!(
        "robust (90th-pct rate):        φ* = {:>6.0} h, Y = {:.4}",
        robust.phi, robust.y
    );
    let predictive = posterior_predictive_y(&outcome.posterior, base, plugin.phi, 8)?;
    println!(
        "posterior-predictive Y at the plug-in φ*: {predictive:.4} \
         (uncertainty-averaged benefit)"
    );

    // --- Stage 3: guarded operation -----------------------------------------
    println!("\n=== Stage 3: guarded operation under the MDCD protocol ===");
    let phi = robust.phi; // fly the conservative choice
    let cfg = SimConfig::new(base.with_mu_new(mu_true)?, phi)?;
    let summary = MonteCarlo::new(cfg)
        .with_replications(4000)
        .with_seed(99)
        .run();
    println!(
        "flying φ = {:.0} h against the true rate {:.0e}:",
        phi, mu_true
    );
    println!(
        "  upgrade succeeds (S1): {:.1}%   safe downgrade (S2): {:.1}%   failure: {:.1}%",
        summary.p_s1 * 100.0,
        summary.p_s2 * 100.0,
        summary.p_s3 * 100.0
    );
    println!(
        "  realized mission worth: {:.0} ± {:.0} of an ideal {:.0} process-hours",
        summary.mean_worth,
        summary.worth_half_width_95,
        2.0 * base.theta
    );
    Ok(())
}
