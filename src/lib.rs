//! # guarded-upgrade
//!
//! Facade crate for the reproduction of *"Performability Analysis of
//! Guarded-Operation Duration: A Translation Approach for Reward Model
//! Solutions"* (Tai, Sanders, Alkalai, Chau, Tso — DSN 2002).
//!
//! This crate re-exports the whole workspace so applications can depend on a
//! single crate:
//!
//! * [`sparsela`] — sparse/dense linear algebra kernels,
//! * [`markov`] — CTMC/DTMC reward model solvers (uniformization, matrix
//!   exponential, steady state, accumulated reward),
//! * [`san`] — stochastic activity networks and reachability analysis,
//! * [`performability`] — the paper's contribution: the successive
//!   model-translation pipeline, the three GSU SAN reward models, and the
//!   performability index `Y(φ)`,
//! * [`mdcd_sim`] — a discrete-event simulator of the MDCD protocol used to
//!   cross-validate the analytic pipeline,
//! * [`gsu_scenario`] — the `.gsu` scenario DSL: parameterized GSU families
//!   (escorts, upgrade waves, coverage decay, aging, phase-type safeguards)
//!   compiled down to the same pipeline (see `SCENARIOS.md`),
//! * [`pool`] — the std-only work-stealing thread pool behind the parallel
//!   φ-sweeps and simulation fan-out (sized by `GSU_THREADS`).
//!
//! # Quickstart
//!
//! ```
//! use guarded_upgrade::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Paper baseline (Table 3): θ=10000h, λ=1200/h, µnew=1e-4, ...
//! let params = GsuParams::paper_baseline();
//! let analysis = GsuAnalysis::new(params)?;
//! let point = analysis.evaluate(7000.0)?;
//! assert!(point.y > 1.0, "guarded operation should pay off here");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use gsu_scenario;
pub use markov;
pub use mdcd_sim;
pub use performability;
pub use pool;
pub use san;
pub use sparsela;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use gsu_scenario::{parse as parse_scenario, ScenarioAnalysis, ScenarioSpec};
    pub use mdcd_sim::{
        estimate_y, EngineKind, GammaMode, MonteCarlo, PathClass, SimConfig, SimRng,
    };
    pub use performability::{
        assemble, ConstituentMeasures, GammaPolicy, GsuAnalysis, GsuParams, PerfError, SweepPoint,
    };
    pub use san::{Activity, Analyzer, Case, Marking, RewardSpec, SanModel, StateSpace};
}
