#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change for review.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

# The suite runs twice: once serial, once on a 4-wide pool. Results must be
# identical (the pool's determinism guarantee); the second run also exercises
# the work-stealing/parking/shutdown paths under every test workload.
echo "==> cargo test -q (GSU_THREADS=1)"
GSU_THREADS=1 cargo test --offline --workspace -q

echo "==> cargo test -q (GSU_THREADS=4)"
GSU_THREADS=4 cargo test --offline --workspace -q

echo "All checks passed."
