#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change for review.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "All checks passed."
