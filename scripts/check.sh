#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, and the full test suite.
# Run from the repository root before sending a change for review.
set -euo pipefail

cd "$(dirname "$0")/.."

# Stamp builds with the commit under test so gsu_build_info / /version can
# identify what was deployed (option_env! keeps builds working without it).
GSU_GIT_HASH="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
export GSU_GIT_HASH

echo "==> cargo fmt --check ($(cargo fmt --version))"
# Style is pinned in rustfmt.toml so the check is toolchain-stable.
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings ($(cargo clippy --version))"
cargo clippy --offline --workspace --all-targets -- -D warnings

# The suite runs twice: once serial, once on a 4-wide pool. Results must be
# identical (the pool's determinism guarantee); the second run also exercises
# the work-stealing/parking/shutdown paths under every test workload.
echo "==> cargo test -q (GSU_THREADS=1)"
GSU_THREADS=1 cargo test --offline --workspace -q

echo "==> cargo test -q (GSU_THREADS=4)"
GSU_THREADS=4 cargo test --offline --workspace -q

cargo build --offline --release -p gsu-serve -p gsu-bench -p gsu-lint --bins

# Static-analysis gate: the linter first proves it can catch seeded
# violations (self-test), then must find nothing deniable in the tree.
# --emit-telemetry refreshes results/lint-findings.jsonl for /metrics.
echo "==> gsu-lint self-test"
target/release/gsu-lint self-test

echo "==> gsu-lint --all"
target/release/gsu-lint --all --emit-telemetry

# Runtime sanitizer: replay fig9 + the smallest catalog scenarios under
# permuted worker schedules at 1/2/4 threads and diff bitwise. --quick
# keeps the stage comfortably inside a 10 s CI budget (measured ~0.1 s).
echo "==> gsu-lint sanitize --quick"
target/release/gsu-lint sanitize --quick

echo "==> gsu-lint jsonl round-trip"
LINT_JSONL="$(mktemp)"
target/release/gsu-lint --all --format jsonl > "$LINT_JSONL"
target/release/gsu-lint validate-jsonl "$LINT_JSONL"
rm -f "$LINT_JSONL"

# Observability smoke: boot the daemon on an ephemeral port, probe the
# endpoints a scraper would hit, and validate the exposition shape.
echo "==> gsu-serve smoke"
SERVE_LOG="$(mktemp)"
target/release/gsu-serve --addr 127.0.0.1:0 --workers 2 > "$SERVE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"' EXIT
SERVE_URL=""
for _ in $(seq 1 50); do
    SERVE_URL="$(sed -n 's#^gsu-serve listening on \(http://.*\)$#\1#p' "$SERVE_LOG")"
    [ -n "$SERVE_URL" ] && break
    sleep 0.1
done
[ -n "$SERVE_URL" ] || { echo "gsu-serve never reported its address"; exit 1; }
if command -v curl > /dev/null; then
    # The greps drain their input (no -q): under pipefail, grep -q exiting
    # at the first match can hand curl an EPIPE and fail a passing probe.
    curl -fsS "$SERVE_URL/healthz" | grep -x 'ok' >/dev/null
    curl -fsS "$SERVE_URL/metrics" | grep '^# TYPE gsu_' >/dev/null
    curl -fsS "$SERVE_URL/metrics" | grep '^gsu_lint_findings_total' >/dev/null
    curl -fsS "$SERVE_URL/metrics" | grep '^gsu_build_info{version=' >/dev/null
    curl -fsS "$SERVE_URL/version" | grep '"name":"gsu-serve"' >/dev/null
    # Request-scoped tracing round trip: the trace id /eval returns must
    # resolve to its span tree on /trace?id= and to a wide-event line
    # (with solver diagnostics) on /requests.
    EVAL_BODY="$(curl -fsS "$SERVE_URL/eval?phi=0.5")"
    echo "$EVAL_BODY" | grep '"y":' >/dev/null
    TRACE_ID="$(echo "$EVAL_BODY" | sed -n 's#.*"trace_id":"\([0-9a-f]*\)".*#\1#p')"
    [ -n "$TRACE_ID" ] || { echo "/eval returned no trace id: $EVAL_BODY"; exit 1; }
    curl -fsS "$SERVE_URL/trace?id=$TRACE_ID" | grep '"serve.eval"' >/dev/null
    curl -fsS "$SERVE_URL/requests" | grep "$TRACE_ID" | grep '"solves":\[' >/dev/null
    # Scenario route: the daemon runs from the workspace root, so the
    # committed catalog must be loaded and evaluable by name.
    curl -fsS "$SERVE_URL/eval?scenario=paper-baseline&phi=5000" \
        | grep '"scenario":"paper-baseline"' >/dev/null
    echo "curl probes ok ($SERVE_URL, trace $TRACE_ID)"
fi
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# The built-in self-test re-validates every endpoint (including error paths)
# through the real TCP stack, with or without curl present.
target/release/gsu-serve smoke --workers 2

# Serving-SLO gate: boot the daemon from the workspace root (so the
# committed SLO.json and scenario catalog load), drive it with the seeded
# open-loop workload at the SLO's pinned rate, and gate on attainment,
# report shape, and client-vs-/stats quantile agreement. A closed-loop
# pass and a no-keepalive pass ride along to quantify capacity and the
# keep-alive win; only the open-loop keep-alive run feeds the ratchet.
echo "==> gsu-bench loadgen --check"
SERVE_LOG="$(mktemp)"
LOADGEN_DIR="$(mktemp -d)"
target/release/gsu-serve --addr 127.0.0.1:0 --workers 2 > "$SERVE_LOG" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -f "$SERVE_LOG"; rm -rf "$LOADGEN_DIR"' EXIT
SERVE_ADDR=""
for _ in $(seq 1 50); do
    SERVE_ADDR="$(sed -n 's#^gsu-serve listening on http://\(.*\)$#\1#p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "gsu-serve never reported its address"; exit 1; }
target/release/gsu-bench loadgen --addr "$SERVE_ADDR" --mode open --duration 5 \
    --label open --report "$LOADGEN_DIR/loadgen-open.json" \
    --bench results/BENCH_serve.json --check
target/release/gsu-bench loadgen --addr "$SERVE_ADDR" --mode closed --duration 2 \
    --report "$LOADGEN_DIR/loadgen-closed.json"
target/release/gsu-bench loadgen --addr "$SERVE_ADDR" --mode open --duration 2 \
    --no-keepalive --report "$LOADGEN_DIR/loadgen-nokeepalive.json"
if command -v curl > /dev/null; then
    curl -fsS "http://$SERVE_ADDR/stats" | grep '"schema":"gsu-stats-v1"' >/dev/null
    curl -fsS "http://$SERVE_ADDR/stats" | grep '"slos":\[{"endpoint":"/eval"' >/dev/null
fi
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true

# Serving-latency ratchet: the open-loop quantiles the loadgen gate just
# measured must stay within 2x of the committed baseline (latency on a
# shared CI box is noisy, hence the wide threshold; the SLO attainment
# check above is the tight gate).
echo "==> gsu-bench regress (serve latency)"
target/release/gsu-bench regress --baseline results/BENCH_serve_baseline.json \
    --current results/BENCH_serve.json --threshold 1.0 --no-update

# Flight-recorder round trip: a telemetry-enabled fig9 run must produce a
# Chrome trace that gsu-bench profile can rebuild into folded flamegraph
# stacks (`path;to;span N`) and a per-span self-time table.
echo "==> gsu-bench profile (fig9 flight recorder)"
PROFILE_DIR="$(mktemp -d)"
GSU_TELEMETRY=1 target/release/fig9 --steps 4 --out "$PROFILE_DIR" > /dev/null
[ -s "$PROFILE_DIR/trace.json" ] || { echo "fig9 wrote no trace.json"; exit 1; }
FOLDED="$(target/release/gsu-bench profile --trace "$PROFILE_DIR/trace.json" --folded)"
echo "$FOLDED" | grep -Eq '^[^ ;]+(;[^ ;]+)+ [0-9]+$' \
    || { echo "profile emitted no nested folded stack:"; echo "$FOLDED"; exit 1; }
echo "$FOLDED" | grep -q 'markov.solve' \
    || { echo "profile shows no solver spans:"; echo "$FOLDED"; exit 1; }
target/release/gsu-bench profile --trace "$PROFILE_DIR/trace.json" --table \
    | grep -Eq '^span +count +total_us +self_us$' \
    || { echo "profile self-time table malformed"; exit 1; }
rm -rf "$PROFILE_DIR"

# Hot-path pin: after the adaptive-solver work, fig12's 22-state models at
# long horizons are solved by the dense matrix exponential — its self time
# must lead the profile. If uniformization (or anything else) creeps back on
# top, the hot path drifted and this fails next to the wall/work ratchet.
echo "==> gsu-bench profile (fig12 hot-path pin)"
PROFILE_DIR="$(mktemp -d)"
GSU_TELEMETRY=1 target/release/fig12 --steps 4 --out "$PROFILE_DIR" > /dev/null
[ -s "$PROFILE_DIR/trace.json" ] || { echo "fig12 wrote no trace.json"; exit 1; }
TOP_SPAN="$(target/release/gsu-bench profile --trace "$PROFILE_DIR/trace.json" --table \
    | awk 'NR==2 {print $1}')"
[ "$TOP_SPAN" = "markov.solve.expm" ] \
    || { echo "fig12 top self-time span is '$TOP_SPAN', expected markov.solve.expm"; exit 1; }
rm -rf "$PROFILE_DIR"

# Scenario-catalog gate: every committed .gsu scenario must reproduce its
# committed golden Y(phi) curve bit-tightly; the per-scenario timing/work
# records land in results/BENCH_sweep.json and feed the regress gate below.
echo "==> gsu-bench scenarios --check"
target/release/gsu-bench scenarios --check

# Bench regression gate: committed sweep numbers vs the committed baseline —
# wall time plus the deterministic work metrics (solver iterations, SpMV
# ops), so an algorithmic slowdown fails even when wall-clock noise hides it.
# --no-update keeps the gate read-only so the tree stays clean under CI.
echo "==> gsu-bench regress"
target/release/gsu-bench regress --no-update

echo "All checks passed."
