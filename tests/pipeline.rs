//! Integration tests: the full model-translation pipeline reproduces the
//! qualitative results of the paper's evaluation section (§6).

use guarded_upgrade::prelude::*;

fn optimum_on_grid(analysis: &GsuAnalysis, steps: usize) -> SweepPoint {
    analysis
        .sweep_grid(steps)
        .expect("sweep succeeds")
        .into_iter()
        .max_by(|a, b| a.y.total_cmp(&b.y))
        .expect("non-empty grid")
}

#[test]
fn y_at_zero_is_exactly_one() {
    let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
    let pt = analysis.evaluate(0.0).unwrap();
    assert!((pt.y - 1.0).abs() < 1e-9);
    assert_eq!(pt.y_s2, 0.0);
    assert!((pt.e_w0 - pt.e_w_phi).abs() < 1e-9);
}

#[test]
fn figure9_baseline_optimum_at_7000() {
    let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
    let best = optimum_on_grid(&analysis, 10);
    assert_eq!(best.phi, 7000.0, "paper: optimal φ = 7000 at µnew = 1e-4");
    assert!(
        best.y > 1.4 && best.y < 1.7,
        "Y* = {} (paper ≈ 1.47)",
        best.y
    );
}

#[test]
fn figure9_lower_mu_optimum_at_5000() {
    let params = GsuParams::paper_baseline().with_mu_new(5e-5).unwrap();
    let analysis = GsuAnalysis::new(params).unwrap();
    let best = optimum_on_grid(&analysis, 10);
    assert_eq!(best.phi, 5000.0, "paper: optimal φ = 5000 at µnew = 5e-5");
    assert!(
        best.y > 1.2 && best.y < 1.5,
        "Y* = {} (paper ≈ 1.30)",
        best.y
    );
}

#[test]
fn figure10_higher_overhead_moves_optimum_to_6000() {
    let params = GsuParams::paper_baseline()
        .with_overhead_rates(2500.0, 2500.0)
        .unwrap();
    let analysis = GsuAnalysis::new(params).unwrap();
    // The paper's derived parameters at this setting.
    let (rho1, rho2) = analysis.rho();
    assert!((rho1 - 0.95).abs() < 0.01, "ρ1 = {rho1} (paper 0.95)");
    assert!((rho2 - 0.90).abs() < 0.04, "ρ2 = {rho2} (paper 0.90)");
    let best = optimum_on_grid(&analysis, 10);
    assert_eq!(best.phi, 6000.0, "paper: optimum drops from 7000 to 6000");
}

#[test]
fn figure11_optimum_insensitive_to_coverage_but_benefit_collapses() {
    let base = GsuParams::paper_baseline()
        .with_overhead_rates(2500.0, 2500.0)
        .unwrap();
    let mut last_max = f64::INFINITY;
    for c in [0.95, 0.75, 0.50] {
        let analysis = GsuAnalysis::new(base.with_coverage(c).unwrap()).unwrap();
        let best = optimum_on_grid(&analysis, 10);
        assert_eq!(
            best.phi, 6000.0,
            "paper: optimal φ stays at 6000 for c = {c}"
        );
        assert!(best.y < last_max, "max Y must fall as coverage drops");
        last_max = best.y;
    }
    // Paper: max Y drops from over 1.45 to about 1.15.
    assert!(last_max > 1.1 && last_max < 1.25, "Y*(c=0.5) = {last_max}");
}

#[test]
fn section6_low_coverage_kills_the_benefit() {
    let base = GsuParams::paper_baseline()
        .with_overhead_rates(2500.0, 2500.0)
        .unwrap();
    // c = 0.20: benefit too small to justify guarding (paper: max ≈ 1.06).
    let analysis = GsuAnalysis::new(base.with_coverage(0.20).unwrap()).unwrap();
    let best = optimum_on_grid(&analysis, 20);
    assert!(best.y < 1.10, "max Y = {} should be marginal", best.y);
    assert!(best.y > 1.0);

    // c = 0.10: Y < 1 for large φ and decreasing past its (tiny) maximum.
    let analysis = GsuAnalysis::new(base.with_coverage(0.10).unwrap()).unwrap();
    let pts = analysis.sweep_grid(20).unwrap();
    assert!(pts.iter().filter(|p| p.phi >= 4000.0).all(|p| p.y < 1.0));
    let best = pts.iter().map(|p| p.y).fold(0.0f64, f64::max);
    assert!(best < 1.01, "max Y = {best}");
    // Decreasing tail.
    let tail: Vec<_> = pts.iter().filter(|p| p.phi >= 5000.0).collect();
    for w in tail.windows(2) {
        assert!(w[1].y <= w[0].y + 1e-9);
    }
}

#[test]
fn figure12_shorter_window_favours_earlier_cutoff() {
    let base = GsuParams::paper_baseline().with_theta(5000.0).unwrap();
    let a1 = GsuAnalysis::new(base).unwrap();
    let best1 = optimum_on_grid(&a1, 10);
    assert_eq!(best1.phi, 2500.0, "paper: optimal φ = 2500 at θ = 5000");

    let a2 = GsuAnalysis::new(base.with_mu_new(5e-5).unwrap()).unwrap();
    let best2 = optimum_on_grid(&a2, 10);
    assert!(
        best2.phi <= 2500.0,
        "paper: optimum ≤ 2500 (they report 2000), got {}",
        best2.phi
    );

    // Relative optimum moves earlier than for θ = 10000 (7000/10000 = 0.7).
    assert!(best1.phi / 5000.0 < 0.7);
}

#[test]
fn optimal_phi_search_refines_grid_optimum() {
    let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
    let coarse = optimum_on_grid(&analysis, 10);
    let refined = analysis.optimal_phi(10, 16).unwrap();
    assert!(refined.y >= coarse.y - 1e-12);
    assert!((refined.phi - coarse.phi).abs() <= 1000.0);
}

#[test]
fn gamma_policy_changes_the_tradeoff() {
    // With no S2 discount, longer guards look strictly better (the downturn
    // in Y comes from γ); the optimum should move to larger φ.
    let params = GsuParams::paper_baseline();
    let discounted = GsuAnalysis::new(params).unwrap();
    let undiscounted = GsuAnalysis::new(params)
        .unwrap()
        .with_gamma_policy(GammaPolicy::Constant(1.0));
    let b_disc = optimum_on_grid(&discounted, 10);
    let b_undisc = optimum_on_grid(&undiscounted, 10);
    assert!(b_undisc.phi >= b_disc.phi);
    assert!(b_undisc.y > b_disc.y);
}

#[test]
fn fixed_overhead_matches_computed_overhead_closely() {
    // Running with the paper's rounded ρ values instead of the RMGp solution
    // must not change the story.
    let params = GsuParams::paper_baseline();
    let computed = GsuAnalysis::new(params).unwrap();
    let fixed = GsuAnalysis::with_fixed_overhead(params, 0.98, 0.95).unwrap();
    for phi in [2000.0, 5000.0, 8000.0] {
        let a = computed.evaluate(phi).unwrap();
        let b = fixed.evaluate(phi).unwrap();
        assert!((a.y - b.y).abs() < 0.02, "φ={phi}: {} vs {}", a.y, b.y);
    }
}

#[test]
fn constituent_measures_are_internally_consistent() {
    let analysis = GsuAnalysis::new(GsuParams::paper_baseline()).unwrap();
    for phi in [0.0, 1000.0, 4000.0, 7000.0, 10_000.0] {
        let m = analysis.measures(phi).unwrap();
        m.validate(phi).unwrap();
        // P(S1 | φ) · survival of remainder never exceeds the unguarded
        // survival by much (guarding cannot create reliability from
        // nothing, it only converts failures into safe downgrades).
        let p_s1 = m.p_a1_gop * m.p_a1_norm_rem;
        assert!(p_s1 <= 1.0);
        // Detection + survival + (undetected or detected-then-failed) ≈ 1
        // at the φ boundary of the guarded model.
        assert!(m.p_a1_gop + m.i_h + m.i_hf <= 1.0 + 1e-9);
    }
}
