//! The scenario-catalog gate: every committed `.gsu` scenario must
//! (a) reproduce its committed golden Y(φ) curve to near machine precision
//! and (b) agree with an independent Monte-Carlo estimate within confidence
//! bounds ([`gsu_scenario::crossval`] picks the backend per scenario shape).
//!
//! Run at both `GSU_THREADS=1` and `GSU_THREADS=4` by `scripts/check.sh`.

use std::path::Path;

use guarded_upgrade::gsu_scenario::{
    crossval, load_dir, read_golden, Backend, ScenarioAnalysis, ScenarioSpec,
};

/// Relative tolerance against committed goldens. The pipeline is
/// deterministic; this only absorbs cross-platform libm drift.
const GOLDEN_REL_TOL: f64 = 1e-9;

fn catalog_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios"))
}

fn golden_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/results/golden"))
}

fn catalog() -> Vec<ScenarioSpec> {
    let specs = load_dir(catalog_dir()).expect("catalog must parse");
    assert!(
        specs.len() >= 10,
        "catalog shrank to {} scenario(s); keep at least 10",
        specs.len()
    );
    specs
}

#[test]
fn catalog_covers_every_scenario_family() {
    let specs = catalog();
    let has = |pred: fn(&ScenarioSpec) -> bool| specs.iter().any(pred);
    assert!(has(|s| s.is_paper_shaped()), "need a paper-shaped scenario");
    assert!(has(|s| s.escorts > 1), "need a multi-escort scenario");
    assert!(has(|s| s.waves.is_some()), "need an upgrade-wave scenario");
    assert!(
        has(|s| s.coverage_decay > 0.0),
        "need a marking-dependent-coverage scenario"
    );
    assert!(has(|s| s.aging.is_some()), "need an aging scenario");
    assert!(
        has(|s| !s.at.is_exponential()),
        "need a phase-type acceptance-test scenario"
    );
    assert!(
        has(|s| !s.ckpt.is_exponential()),
        "need a phase-type checkpoint scenario"
    );
}

#[test]
fn catalog_matches_golden_curves() {
    for spec in catalog() {
        let name = spec.name.clone();
        let golden = read_golden(&golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: missing golden: {e}"));
        let analysis =
            ScenarioAnalysis::new(spec).unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        let curve = analysis
            .curve()
            .unwrap_or_else(|e| panic!("{name}: sweep failed: {e}"));
        assert_eq!(
            curve.len(),
            golden.points.len(),
            "{name}: grid length drifted from golden"
        );
        for (point, &(gphi, gy)) in curve.iter().zip(&golden.points) {
            assert_eq!(point.phi, gphi, "{name}: grid drifted from golden");
            let rel = (point.y - gy).abs() / gy.abs().max(1.0);
            assert!(
                rel <= GOLDEN_REL_TOL,
                "{name}: Y({gphi}) = {} drifted from golden {gy} (rel err {rel:.2e})",
                point.y
            );
        }
    }
}

#[test]
fn catalog_cross_validates_against_simulation() {
    for spec in catalog() {
        let name = spec.name.clone();
        let analysis =
            ScenarioAnalysis::new(spec).unwrap_or_else(|e| panic!("{name}: build failed: {e}"));
        // Extended scenarios fall back to discrete-event simulation of the
        // compiled SAN, which costs far more per φ point than the dedicated
        // MDCD simulator — probe one point there, two elsewhere.
        let max_points = match gsu_scenario::crossval::backend_for(analysis.spec()) {
            Backend::SanDes => 1,
            Backend::MdcdExact | Backend::MdcdHybrid => 2,
        };
        let report = crossval(&analysis, max_points)
            .unwrap_or_else(|e| panic!("{name}: cross-validation errored: {e}"));
        assert!(
            report.all_ok(),
            "{name} [{}]: analytic and simulated estimates disagree: {:#?}",
            report.backend,
            report.failures()
        );
    }
}
