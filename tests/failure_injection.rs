//! Failure-injection tests: every layer must refuse pathological inputs
//! loudly (typed errors) instead of producing silent garbage — the
//! dependability posture the paper's subject matter demands of its own
//! tooling.

use guarded_upgrade::prelude::*;
use markov::{Ctmc, MarkovError};
use san::{ReachabilityOptions, SanError};

#[test]
fn nan_and_negative_rates_are_rejected_at_every_layer() {
    // Markov layer.
    assert!(matches!(
        Ctmc::from_transitions(2, [(0, 1, f64::NAN)]),
        Err(MarkovError::InvalidModel { .. })
    ));
    assert!(Ctmc::from_transitions(2, [(0, 1, -1.0)]).is_err());
    assert!(Ctmc::from_transitions(2, [(0, 1, f64::INFINITY)]).is_err());

    // SAN layer: the invalid rate surfaces at evaluation time, when the
    // marking context is known.
    let mut m = SanModel::new("nan");
    let p = m.add_place("p", 1);
    m.add_activity(san::Activity::timed_fn("bad", |_| f64::NAN).with_input_arc(p, 1))
        .unwrap();
    assert!(matches!(
        StateSpace::generate(&m, &ReachabilityOptions::default()),
        Err(SanError::InvalidFunction { .. })
    ));

    // Parameter layer.
    let mut params = GsuParams::paper_baseline();
    params.lambda = f64::NAN;
    assert!(params.validate().is_err());
}

#[test]
fn corrupted_distributions_are_rejected() {
    let chain = Ctmc::from_transitions(2, [(0, 1, 1.0)]).unwrap();
    for bad in [
        vec![0.5, 0.6],      // mass > 1
        vec![1.5, -0.5],     // negative
        vec![f64::NAN, 1.0], // NaN
        vec![1.0],           // wrong length
        vec![0.0, 0.0],      // mass 0
    ] {
        assert!(
            markov::transient::distribution(&chain, &bad, 1.0, &Default::default()).is_err(),
            "accepted corrupted distribution {bad:?}"
        );
    }
}

#[test]
fn state_space_explosion_is_contained() {
    // Unbounded counter: the generator must stop at the configured cap
    // rather than exhaust memory.
    let mut m = SanModel::new("unbounded");
    let p = m.add_place("p", 0);
    m.add_activity(san::Activity::timed("grow", 1.0).with_output_arc(p, 1))
        .unwrap();
    let opts = ReachabilityOptions {
        max_states: 1000,
        ..Default::default()
    };
    assert!(matches!(
        StateSpace::generate(&m, &opts),
        Err(SanError::StateSpaceLimit { limit: 1000 })
    ));
}

#[test]
fn solver_budget_exhaustion_is_a_typed_error() {
    // A stiff chain with uniformization forced and a tiny budget.
    let chain = Ctmc::from_transitions(2, [(0, 1, 1e6), (1, 0, 1e6)]).unwrap();
    let opts = markov::transient::Options {
        method: markov::transient::Method::Uniformization,
        max_uniformization_steps: 10,
        ..Default::default()
    };
    assert!(matches!(
        markov::transient::distribution(&chain, &[1.0, 0.0], 1.0, &opts),
        Err(MarkovError::LimitExceeded { .. })
    ));
    // And with the dense engine barred by a zero state limit.
    let opts = markov::transient::Options {
        method: markov::transient::Method::MatrixExponential,
        dense_state_limit: 1,
        ..Default::default()
    };
    assert!(matches!(
        markov::transient::distribution(&chain, &[1.0, 0.0], 1.0, &opts),
        Err(MarkovError::LimitExceeded { .. })
    ));
}

#[test]
fn gsu_pipeline_rejects_corrupt_parameters_without_panicking() {
    let base = GsuParams::paper_baseline();
    type Corruption = Box<dyn Fn(&mut GsuParams)>;
    let corruptions: Vec<Corruption> = vec![
        Box::new(|p| p.theta = -1.0),
        Box::new(|p| p.theta = f64::INFINITY),
        Box::new(|p| p.lambda = 0.0),
        Box::new(|p| p.coverage = 2.0),
        Box::new(|p| p.coverage = -0.1),
        Box::new(|p| p.p_ext = f64::NAN),
        Box::new(|p| p.alpha = 0.0),
        Box::new(|p| p.mu_new = 0.0),
        Box::new(|p| p.mu_old = -1e-9),
    ];
    for corrupt in corruptions {
        let mut params = base;
        corrupt(&mut params);
        assert!(
            GsuAnalysis::new(params).is_err(),
            "pipeline accepted corrupt parameters {params:?}"
        );
    }
}

#[test]
fn extreme_but_valid_parameters_stay_finite() {
    // Boundary-adjacent parameter sets must produce finite, in-range
    // results, not NaNs.
    let cases = [
        GsuParams {
            coverage: 1.0,
            ..GsuParams::paper_baseline()
        },
        GsuParams {
            coverage: 0.0,
            ..GsuParams::paper_baseline()
        },
        GsuParams {
            p_ext: 1.0,
            ..GsuParams::paper_baseline()
        },
        GsuParams {
            mu_old: 0.0,
            ..GsuParams::paper_baseline()
        },
        GsuParams {
            mu_new: 1e-2, // very unreliable upgrade
            ..GsuParams::paper_baseline()
        },
    ];
    for params in cases {
        let analysis = GsuAnalysis::new(params).expect("valid boundary parameters");
        for phi in [0.0, 5000.0, 10_000.0] {
            let pt = analysis
                .evaluate(phi)
                .unwrap_or_else(|e| panic!("evaluation failed for {params:?} at φ={phi}: {e}"));
            assert!(pt.y.is_finite(), "{params:?} gave Y = {}", pt.y);
            assert!(pt.y > 0.0);
            pt.measures.validate(phi).unwrap();
        }
    }
}

#[test]
fn simulator_rejects_invalid_configs_and_seeds_do_not_panic() {
    let params = GsuParams::paper_baseline();
    assert!(SimConfig::new(params, -5.0).is_err());
    assert!(SimConfig::new(params, params.theta + 1.0).is_err());
    let mut bad = params;
    bad.coverage = 1.5;
    assert!(SimConfig::new(bad, 100.0).is_err());

    // Hybrid engine across many seeds, including adversarial ones.
    let cfg = SimConfig::new(params, 7000.0).unwrap();
    let cal = mdcd_sim::Calibration {
        rho1: 0.98,
        rho2: 0.955,
        p2_dirty: 0.9,
    };
    for seed in [0, 1, u64::MAX, u64::MAX / 2, 0xDEAD_BEEF] {
        let mut rng = SimRng::from_seed(seed);
        let out = mdcd_sim::simulate_run_hybrid(&cfg, &cal, &mut rng);
        assert!(out.worth.is_finite());
        assert!(out.worth >= 0.0);
    }
}

#[test]
fn vanishing_loops_in_user_models_are_detected_not_hung() {
    let mut m = SanModel::new("pingpong");
    let a = m.add_place("a", 1);
    let b = m.add_place("b", 0);
    m.add_activity(
        san::Activity::instantaneous("ab")
            .with_input_arc(a, 1)
            .with_output_arc(b, 1),
    )
    .unwrap();
    m.add_activity(
        san::Activity::instantaneous("ba")
            .with_input_arc(b, 1)
            .with_output_arc(a, 1),
    )
    .unwrap();
    // Both the analytic generator and the trajectory simulator must bail.
    assert!(matches!(
        StateSpace::generate(&m, &ReachabilityOptions::default()),
        Err(SanError::VanishingLoop { .. })
    ));
    let spec = RewardSpec::new();
    let mut rng = san::simulate::SanRng::from_seed(1);
    assert!(matches!(
        san::simulate::simulate_trajectory(&m, &spec, 1.0, &Default::default(), &mut rng),
        Err(SanError::VanishingLoop { .. })
    ));
}
