//! Property-based integration tests spanning the whole stack: random
//! parameter sets and random SAN topologies must preserve the structural
//! invariants of the analysis.

use guarded_upgrade::prelude::*;
use proptest::prelude::*;
use san::ReachabilityOptions;

/// Random-but-sane GSU parameter sets (kept in the regime the models are
/// meant for: messages ≫ faults, safeguards faster than messages).
fn arb_params() -> impl Strategy<Value = GsuParams> {
    (
        100.0..2000.0f64, // theta
        20.0..200.0f64,   // lambda
        1e-4..5e-3f64,    // mu_new  (µ·θ within a sensible range)
        0.3..0.99f64,     // coverage
        0.05..0.3f64,     // p_ext
        2.0..20.0f64,     // alpha / lambda ratio
    )
        .prop_map(
            |(theta, lambda, mu_new, coverage, p_ext, ratio)| GsuParams {
                theta,
                lambda,
                mu_new,
                mu_old: mu_new * 1e-4,
                coverage,
                p_ext,
                alpha: lambda * ratio,
                beta: lambda * ratio,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn y_is_positive_and_one_at_zero(params in arb_params()) {
        let analysis = GsuAnalysis::new(params).unwrap();
        let p0 = analysis.evaluate(0.0).unwrap();
        prop_assert!((p0.y - 1.0).abs() < 1e-9);
        for frac in [0.25, 0.5, 0.75, 1.0] {
            let pt = analysis.evaluate(params.theta * frac).unwrap();
            prop_assert!(pt.y.is_finite());
            prop_assert!(pt.y > 0.0);
            prop_assert!(pt.e_w_phi >= 0.0);
            prop_assert!(pt.e_w_phi <= 2.0 * params.theta * (1.0 + 1e-9));
            pt.measures.validate(params.theta * frac).unwrap();
        }
    }

    #[test]
    fn guarded_worth_exceeds_unguarded_at_decent_coverage(params in arb_params()) {
        prop_assume!(params.coverage > 0.7);
        let analysis = GsuAnalysis::new(params).unwrap();
        // Somewhere on the grid, guarding should not be (much) worse than
        // not guarding: the S2 recuperation is worth something.
        let best = analysis
            .sweep_grid(8)
            .unwrap()
            .into_iter()
            .map(|p| p.y)
            .fold(0.0f64, f64::max);
        prop_assert!(best >= 1.0 - 1e-9, "best Y = {best}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random cyclic birth-death-like SANs: generated chains are valid and
    /// solver answers are consistent across engines.
    #[test]
    fn random_san_chain_consistency(
        capacity in 1u32..6,
        up_rate in 0.1..5.0f64,
        down_rate in 0.1..5.0f64,
        t in 0.1..20.0f64,
    ) {
        let mut m = SanModel::new("bd");
        let q = m.add_place("q", 0);
        m.add_activity(
            Activity::timed("up", up_rate)
                .with_enabling(move |mk| mk.tokens(q) < capacity)
                .with_output_arc(q, 1),
        ).unwrap();
        m.add_activity(Activity::timed("down", down_rate).with_input_arc(q, 1)).unwrap();

        let space = StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap();
        prop_assert_eq!(space.n_states(), capacity as usize + 1);

        // Generator rows sum to zero.
        for s in space.ctmc().generator().row_sums() {
            prop_assert!(s.abs() < 1e-9);
        }

        // Transient engines agree.
        let analyzer = Analyzer::from_state_space(
            StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap(),
        );
        let spec = RewardSpec::new().rate_fn(|_| true, move |mk| mk.tokens(q) as f64);
        let uni = markov::transient::Options {
            method: markov::transient::Method::Uniformization,
            max_uniformization_steps: 50_000_000,
            ..Default::default()
        };
        let exp = markov::transient::Options {
            method: markov::transient::Method::MatrixExponential,
            ..Default::default()
        };

        let a = Analyzer::from_state_space(
            StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap(),
        ).with_transient_options(uni).instant_reward(&spec, t).unwrap();
        let b = analyzer.with_transient_options(exp).instant_reward(&spec, t).unwrap();
        prop_assert!((a - b).abs() < 1e-7, "uniformization {a} vs expm {b}");
    }

    /// Simulation worth is always within the physical bounds.
    #[test]
    fn simulation_worth_bounds(seed in 0u64..5000, phi_frac in 0.0..1.0f64) {
        let params = GsuParams {
            theta: 60.0,
            lambda: 30.0,
            mu_new: 0.03,
            mu_old: 1e-6,
            coverage: 0.9,
            p_ext: 0.1,
            alpha: 150.0,
            beta: 150.0,
        };
        let phi = params.theta * phi_frac;
        let cfg = SimConfig::new(params, phi).unwrap();
        let mut rng = SimRng::from_seed(seed);
        let out = mdcd_sim::simulate_run(&cfg, &mut rng);
        prop_assert!(out.worth >= 0.0);
        prop_assert!(out.worth <= 2.0 * params.theta + 1e-9);
        match out.class {
            PathClass::S3 => prop_assert_eq!(out.worth, 0.0),
            PathClass::S2 => prop_assert!(out.detection_time.is_some()),
            PathClass::S1 => {
                prop_assert!(out.detection_time.is_none());
                prop_assert!(out.failure_time.is_none());
            }
        }
    }
}
