//! The parallelism contract: `GSU_THREADS` changes wall time, never
//! numbers. Sweeps, sensitivity analyses, and Monte-Carlo estimates must be
//! **bitwise** equal at any thread count — and equal to the pre-pool serial
//! path (a plain per-φ `evaluate` loop).
//!
//! Everything lives in one `#[test]` because the thread count is a
//! process-global environment variable: separate `#[test]` functions run
//! concurrently inside one test binary and would race on it.

use guarded_upgrade::performability::sensitivity::local_sensitivity;
use guarded_upgrade::prelude::*;

fn with_threads<T>(threads: &str, f: impl FnOnce() -> T) -> T {
    std::env::set_var("GSU_THREADS", threads);
    let out = f();
    std::env::remove_var("GSU_THREADS");
    out
}

#[test]
fn thread_count_never_changes_results() {
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params).unwrap();

    // --- φ sweep: serial loop vs 1-thread pool vs 4-thread pool. ----------
    let serial: Vec<SweepPoint> = (0..=6)
        .map(|i| analysis.evaluate(params.theta * i as f64 / 6.0).unwrap())
        .collect();
    let one = with_threads("1", || analysis.sweep_grid(6).unwrap());
    let four = with_threads("4", || analysis.sweep_grid(6).unwrap());
    assert_eq!(
        serial, one,
        "GSU_THREADS=1 must match the plain serial loop"
    );
    assert_eq!(one, four, "GSU_THREADS=4 must match GSU_THREADS=1");
    for (a, b) in one.iter().zip(&four) {
        assert_eq!(a.y.to_bits(), b.y.to_bits());
        assert_eq!(a.e_w_phi.to_bits(), b.e_w_phi.to_bits());
    }

    // --- Local sensitivity (per-parameter perturbed pipelines). -----------
    let sens_one = with_threads("1", || local_sensitivity(params, 7000.0, 0.1).unwrap());
    let sens_four = with_threads("4", || local_sensitivity(params, 7000.0, 0.1).unwrap());
    assert_eq!(sens_one, sens_four);
    assert_eq!(sens_one.len(), 7);

    // --- Monte-Carlo estimates (per-replication seed streams). ------------
    let est_one = with_threads("1", || estimate_y(params, 6000.0, 400, 7).unwrap());
    let est_four = with_threads("4", || estimate_y(params, 6000.0, 400, 7).unwrap());
    assert_eq!(est_one.y.to_bits(), est_four.y.to_bits());
    assert_eq!(est_one.guarded, est_four.guarded);
    assert_eq!(est_one.unguarded, est_four.unguarded);

    // --- Grid validation is shared (and identical) across sweep flavours. -
    let bad = [4000.0, 1000.0];
    let from_sweep = with_threads("4", || analysis.sweep(bad).unwrap_err());
    let from_incremental = analysis.sweep_incremental(&bad).unwrap_err();
    assert_eq!(format!("{from_sweep}"), format!("{from_incremental}"));
    assert!(analysis.sweep([-5.0]).is_err());
    assert!(analysis.sweep([params.theta + 1.0]).is_err());
}
