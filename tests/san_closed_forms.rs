//! Integration tests: the SAN → CTMC → reward-variable stack against
//! closed-form queueing/reliability results, exercising every solver path
//! the GSU study relies on.

use guarded_upgrade::prelude::*;
use markov::steady::SteadyMethod;
use markov::transient::{Method, Options};
use san::ReachabilityOptions;

/// M/M/1/K as a SAN.
fn mm1k(arrival: f64, service: f64, k: u32) -> (SanModel, san::PlaceId) {
    let mut m = SanModel::new("mm1k");
    let q = m.add_place("queue", 0);
    m.add_activity(
        Activity::timed("arrive", arrival)
            .with_enabling(move |mk| mk.tokens(q) < k)
            .with_output_arc(q, 1),
    )
    .unwrap();
    m.add_activity(Activity::timed("serve", service).with_input_arc(q, 1))
        .unwrap();
    (m, q)
}

#[test]
fn mm1k_steady_state_distribution() {
    let (rho, k) = (0.7, 5u32);
    let (m, q) = mm1k(rho, 1.0, k);
    let analyzer = Analyzer::generate(&m, &ReachabilityOptions::default()).unwrap();
    let z: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
    for i in 0..=k {
        let want = rho.powi(i as i32) / z;
        let got = analyzer
            .state_space()
            .states_where(|mk| mk.tokens(q) == i)
            .len();
        assert_eq!(got, 1);
        let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(q) == i, 1.0);
        let p = analyzer.steady_reward(&spec).unwrap();
        assert!((p - want).abs() < 1e-10, "state {i}: {p} vs {want}");
    }
}

#[test]
fn mm1k_mean_queue_length_by_all_steady_methods() {
    let (m, q) = mm1k(1.0, 1.5, 4);
    let space = StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap();
    let spec = RewardSpec::new().rate_fn(|_| true, move |mk| mk.tokens(q) as f64);
    let rho: f64 = 1.0 / 1.5;
    let z: f64 = (0..=4).map(|i| rho.powi(i)).sum();
    let want: f64 = (0..=4).map(|i| i as f64 * rho.powi(i)).sum::<f64>() / z;

    let methods = [
        SteadyMethod::Direct,
        SteadyMethod::GaussSeidel {
            options: Default::default(),
        },
        SteadyMethod::Power {
            max_iterations: 1_000_000,
            tolerance: 1e-13,
        },
    ];
    for method in methods {
        let analyzer = san::Analyzer::from_state_space(
            StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap(),
        )
        .with_steady_method(method.clone());
        let got = analyzer.steady_reward(&spec).unwrap();
        assert!(
            (got - want).abs() < 1e-7,
            "{method:?}: {got} vs {want} (space {} states)",
            space.n_states()
        );
    }
}

#[test]
fn erlang_stage_chain_transient_both_engines() {
    // 4-stage Erlang server modelled as a SAN pipeline; absorption
    // probability at t equals the Erlang(4, ν) CDF.
    let stages = 4u32;
    let nu = 2.5;
    let mut m = SanModel::new("erlang");
    let stage = m.add_place("stage", 0);
    m.add_activity(
        Activity::timed("advance", nu)
            .with_enabling(move |mk| mk.tokens(stage) < stages)
            .with_output_arc(stage, 1),
    )
    .unwrap();

    let t = 1.3;
    let x = nu * t;
    let mut partial = 1.0;
    let mut term = 1.0;
    for j in 1..stages {
        term *= x / j as f64;
        partial += term;
    }
    let want = 1.0 - partial * (-x).exp();

    for method in [Method::Uniformization, Method::MatrixExponential] {
        let opts = Options {
            method,
            ..Default::default()
        };
        let analyzer = Analyzer::generate(&m, &ReachabilityOptions::default())
            .unwrap()
            .with_transient_options(opts);
        let got = analyzer
            .probability_at(t, move |mk| mk.tokens(stage) == stages)
            .unwrap();
        assert!((got - want).abs() < 1e-9, "{method:?}: {got} vs {want}");
    }
}

#[test]
fn accumulated_reward_matches_renewal_availability() {
    // Up/down system: expected uptime in [0, t] has a closed form.
    let (lam, mu) = (0.4, 1.1); // failure, repair
    let mut m = SanModel::new("updown");
    let up = m.add_place("up", 1);
    m.add_activity(Activity::timed("fail", lam).with_input_arc(up, 1))
        .unwrap();
    m.add_activity(
        Activity::timed("repair", mu)
            .with_enabling(move |mk| mk.tokens(up) == 0)
            .with_output_arc(up, 1),
    )
    .unwrap();
    let analyzer = Analyzer::generate(&m, &ReachabilityOptions::default()).unwrap();
    let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(up) == 1, 1.0);
    let t = 7.0;
    let s = lam + mu;
    let want = mu / s * t + lam / (s * s) * (1.0 - (-s * t).exp());
    let got = analyzer.accumulated_reward(&spec, t).unwrap();
    assert!((got - want).abs() < 1e-8, "{got} vs {want}");
}

#[test]
fn vanishing_elimination_equals_fast_timed_limit() {
    // The same branching model with an instantaneous branch vs a timed
    // branch 10^7 times faster than everything else: steady-state rewards
    // must agree to ~1e-6.
    fn build(instantaneous: bool) -> (SanModel, san::PlaceId) {
        let mut m = SanModel::new("branch");
        let pool = m.add_place("pool", 1);
        let mid = m.add_place("mid", 0);
        let a = m.add_place("a", 0);
        let b = m.add_place("b", 0);
        m.add_activity(
            Activity::timed("work", 1.0)
                .with_input_arc(pool, 1)
                .with_output_arc(mid, 1),
        )
        .unwrap();
        let branch = if instantaneous {
            Activity::instantaneous("branch")
        } else {
            Activity::timed("branch", 1e7)
        };
        m.add_activity(
            branch
                .with_input_arc(mid, 1)
                .with_case(Case::with_probability(0.3).with_output_arc(a, 1))
                .with_case(Case::with_probability(0.7).with_output_arc(b, 1)),
        )
        .unwrap();
        m.add_activity(
            Activity::timed("ra", 2.0)
                .with_input_arc(a, 1)
                .with_output_arc(pool, 1),
        )
        .unwrap();
        m.add_activity(
            Activity::timed("rb", 0.5)
                .with_input_arc(b, 1)
                .with_output_arc(pool, 1),
        )
        .unwrap();
        (m, a)
    }

    let (m_inst, a_inst) = build(true);
    let (m_timed, a_timed) = build(false);
    let an_inst = Analyzer::generate(&m_inst, &ReachabilityOptions::default()).unwrap();
    let an_timed = Analyzer::generate(&m_timed, &ReachabilityOptions::default()).unwrap();
    // The eliminated model has strictly fewer states.
    assert!(an_inst.state_space().n_states() < an_timed.state_space().n_states());
    let spec_i = RewardSpec::new().rate_when(move |mk| mk.tokens(a_inst) == 1, 1.0);
    let spec_t = RewardSpec::new().rate_when(move |mk| mk.tokens(a_timed) == 1, 1.0);
    let p_inst = an_inst.steady_reward(&spec_i).unwrap();
    let p_timed = an_timed.steady_reward(&spec_t).unwrap();
    assert!(
        (p_inst - p_timed).abs() < 1e-6,
        "eliminated {p_inst} vs stiff-timed {p_timed}"
    );
}

#[test]
fn absorbing_analysis_agrees_with_transient_limit() {
    // Competing risks from the RMNd shape: failure probability from the
    // dense absorbing analysis equals the t→∞ transient probability.
    let mut m = SanModel::new("absorbing");
    let live = m.add_place("live", 1);
    let detected = m.add_place("det", 0);
    let failed = m.add_place("fail", 0);
    m.add_activity(
        Activity::timed("resolve", 3.0)
            .with_input_arc(live, 1)
            .with_case(Case::with_probability(0.8).with_output_arc(detected, 1))
            .with_case(Case::with_probability(0.2).with_output_arc(failed, 1)),
    )
    .unwrap();
    let space = StateSpace::generate(&m, &ReachabilityOptions::default()).unwrap();
    let analysis = markov::steady::absorbing_analysis(space.ctmc()).unwrap();
    let fail_state = space
        .states_where(|mk| mk.tokens(failed) == 1)
        .pop()
        .unwrap();
    let p_fail = analysis
        .absorption_from(space.initial_distribution(), fail_state)
        .unwrap();
    assert!((p_fail - 0.2).abs() < 1e-12);

    let analyzer = san::Analyzer::from_state_space(space);
    let p_fail_t = analyzer
        .probability_at(100.0, move |mk| mk.tokens(failed) == 1)
        .unwrap();
    assert!((p_fail_t - 0.2).abs() < 1e-9);
}

#[test]
fn detection_time_is_a_phase_type_law_of_rmgd() {
    // The detection-time CDF computed three independent ways must agree:
    // (a) the constituent measure ∫h + ∫∫hf (detected by φ, alive or not),
    // (b) the phase-type law of hitting the detected states,
    // (c) the first-passage transient solver.
    use markov::phase_type::PhaseType;
    use performability::gsu::rmgd;

    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params).unwrap();
    let model = rmgd::build(&params).unwrap();
    let space = StateSpace::generate(&model.model, &Default::default()).unwrap();
    let detected_place = model.places.detected;
    let targets = space.states_where(|mk| mk.tokens(detected_place) == 1);
    let ph =
        PhaseType::first_passage(space.ctmc(), space.initial_distribution(), &targets).unwrap();

    for phi in [2000.0, 6000.0, 10_000.0] {
        let m = analysis.measures(phi).unwrap();
        let via_measures = m.i_h + m.i_hf;
        let via_ph = ph.cdf(phi).unwrap();
        let via_fp = markov::first_passage::hitting_probability_by(
            space.ctmc(),
            space.initial_distribution(),
            &targets,
            phi,
            &Default::default(),
        )
        .unwrap();
        assert!(
            (via_measures - via_ph).abs() < 1e-7,
            "φ={phi}: measures {via_measures} vs phase-type {via_ph}"
        );
        assert!((via_ph - via_fp).abs() < 1e-7);
    }
    // The law is defective: some mass fails undetected or never errs.
    let mass = ph.total_mass().unwrap();
    assert!(mass < 1.0);
    assert!(
        mass > 0.5,
        "most errors should eventually be detected: {mass}"
    );
}

#[test]
fn san_simulator_cross_validates_rmnd() {
    // The generic SAN trajectory simulator against the analytic transient
    // solution of the actual RMNd model (scaled rates so trajectories are
    // short).
    use performability::gsu::rmnd;
    use san::simulate;

    let mut params = GsuParams::paper_baseline();
    params.theta = 50.0;
    params.lambda = 40.0;
    params.mu_new = 0.05;
    params.mu_old = 1e-6;
    let model = rmnd::build(&params, params.mu_new).unwrap();
    let failure = model.places.failure;

    let analytic = Analyzer::generate(&model.model, &Default::default())
        .unwrap()
        .probability_at(40.0, move |mk| mk.tokens(failure) == 0)
        .unwrap();
    let spec = RewardSpec::new().rate_when(move |mk| mk.tokens(failure) == 0, 1.0);
    let est =
        simulate::estimate_instant_reward(&model.model, &spec, 40.0, 3000, 99, &Default::default())
            .unwrap();
    assert!(
        (est.mean - analytic).abs() < est.half_width_95.max(0.03),
        "simulated {} ± {} vs analytic {analytic}",
        est.mean,
        est.half_width_95
    );
}

#[test]
fn gsu_models_are_safe_and_live() {
    // Structural sanity of the three paper models: every place is
    // 1-bounded (the models are safe nets) and every timed activity can
    // fire somewhere in the reachable space (no dead behaviour).
    use performability::gsu::{rmgd, rmgp, rmnd};
    use san::structural;

    let params = GsuParams::paper_baseline();
    let models: Vec<(&str, SanModel)> = vec![
        ("rmgd", rmgd::build(&params).unwrap().model),
        ("rmgp", rmgp::build(&params).unwrap().model),
        ("rmnd", rmnd::build(&params, params.mu_new).unwrap().model),
    ];
    for (name, model) in &models {
        let space = StateSpace::generate(model, &Default::default()).unwrap();
        assert!(structural::is_safe(&space), "{name} should be a safe net");
        let dead = structural::dead_timed_activities(model, &space);
        assert!(
            dead.is_empty(),
            "{name} has dead timed activities: {:?}",
            dead.iter()
                .map(|&id| model.activity_name(id))
                .collect::<Vec<_>>()
        );
        let report = structural::report(model, &space);
        assert!(report.contains("safe (1-bounded): true"));
    }
}
