//! Concurrency contract of the telemetry collector: four pool workers emit
//! counters, observations, and spans while the main thread repeatedly calls
//! `Collector::snapshot()`. No emission may be lost, counters must be
//! monotone across snapshots, and both exported formats (Prometheus text
//! exposition, `gsu-telemetry-v3` run report) must stay well-formed at every
//! intermediate snapshot. A second test checks trace propagation: span
//! trees reconstruct per request even when four pool workers interleave
//! their spans on the same collector.
//!
//! The telemetry sink is process-global, so the tests serialize on a local
//! lock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use telemetry::Snapshot;

const WORKERS: usize = 4;
const EMISSIONS_PER_WORKER: u64 = 2_000;

/// Serializes the `#[test]`s in this binary: each installs its own global
/// collector and must not observe the other's traffic.
static SINK: Mutex<()> = Mutex::new(());

#[test]
fn concurrent_emission_loses_nothing_and_snapshots_stay_valid() {
    let _sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let collector = telemetry::Collector::install();
    let done = Arc::new(AtomicBool::new(false));

    // WORKERS + 1 slots: the scope's calling thread only drains tasks after
    // the closure returns, and the closure below runs the snapshot loop
    // until every emitter finishes.
    let pool = pool::Pool::new(WORKERS + 1);
    pool.scope(|scope| {
        let done = &done;
        for worker in 0..WORKERS {
            let done = done.clone();
            scope.spawn(move || {
                for i in 0..EMISSIONS_PER_WORKER {
                    telemetry::counter("conc.events", 1);
                    telemetry::gauge("conc.last_i", i as f64);
                    telemetry::observe("conc.value", (worker * 7 + 1) as f64);
                    if i % 500 == 0 {
                        let mut span = telemetry::span("conc.burst");
                        span.record("worker", worker as u64);
                    }
                }
                if worker == WORKERS - 1 {
                    // Not a synchronization barrier — just lets the snapshot
                    // loop below terminate promptly once traffic stops.
                    done.store(true, Ordering::Relaxed);
                }
            });
        }

        // Snapshot continuously while the workers hammer the sink.
        let mut last_events = 0u64;
        let mut snapshots = 0u64;
        while !done.load(Ordering::Relaxed) {
            let snapshot = collector.snapshot();
            let events = counter_of(&snapshot, "conc.events");
            assert!(
                events >= last_events,
                "counter went backwards: {last_events} -> {events}"
            );
            last_events = events;
            assert_valid_exports(&snapshot);
            snapshots += 1;
        }
        assert!(snapshots > 0, "snapshot loop never ran");
    });

    // Traffic has stopped (scope joined): the final snapshot must be exact.
    let snapshot = collector.snapshot();
    let total = WORKERS as u64 * EMISSIONS_PER_WORKER;
    assert_eq!(counter_of(&snapshot, "conc.events"), total);

    let hist = snapshot
        .histograms
        .iter()
        .find(|(name, _)| name == "conc.value")
        .map(|(_, h)| h)
        .expect("conc.value histogram");
    assert_eq!(hist.count, total);
    // Σ over workers of EMISSIONS_PER_WORKER * (7w + 1).
    let expected_sum: f64 = (0..WORKERS)
        .map(|w| EMISSIONS_PER_WORKER as f64 * (w * 7 + 1) as f64)
        .sum();
    assert!(
        (hist.sum - expected_sum).abs() < 1e-6 * expected_sum,
        "sum {} != {expected_sum}",
        hist.sum
    );
    assert_eq!(hist.min, 1.0);
    assert_eq!(hist.max, (7 * (WORKERS - 1) + 1) as f64);

    let spans = snapshot
        .spans
        .iter()
        .find(|(name, _)| name == "conc.burst")
        .map(|(_, s)| s)
        .expect("conc.burst spans");
    assert_eq!(
        spans.count,
        WORKERS as u64 * (EMISSIONS_PER_WORKER.div_ceil(500))
    );

    assert_valid_exports(&snapshot);
    telemetry::clear_sink();
}

#[test]
fn span_trees_reconstruct_per_request_across_pool_workers() {
    let _sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let collector = telemetry::Collector::install();
    let pool = pool::Pool::new(WORKERS);

    // Scenario 1 — four concurrent "requests", one per pool worker. Each
    // mints its own trace root and nests spans two deep; the trees must come
    // back disjoint and correctly linked even though all four interleave
    // into one collector.
    let request_traces: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    pool.scope(|scope| {
        let request_traces = &request_traces;
        for worker in 0..WORKERS {
            scope.spawn(move || {
                let ctx = telemetry::TraceContext::new_root();
                let _attached = ctx.attach();
                {
                    let mut root = telemetry::span("tree.request");
                    root.record("worker", worker as u64);
                    for _ in 0..3 {
                        let _mid = telemetry::span("tree.mid");
                        let _leaf = telemetry::span("tree.leaf");
                    }
                }
                request_traces.lock().unwrap().push(ctx.trace_id);
            });
        }
    });

    let request_traces = request_traces.into_inner().unwrap();
    assert_eq!(request_traces.len(), WORKERS);
    let mut distinct = request_traces.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert_eq!(distinct.len(), WORKERS, "trace ids must be distinct");

    for &trace_id in &request_traces {
        let spans = collector.trace_spans(trace_id);
        assert_eq!(spans.len(), 7, "request tree: 1 root + 3 mid + 3 leaf");
        assert!(spans.iter().all(|s| s.trace_id == trace_id));
        let root = spans
            .iter()
            .find(|s| s.name == "tree.request")
            .expect("request root span");
        assert_eq!(root.parent_id, 0, "request span is the trace root");
        // Every non-root span links to a parent inside the same tree, and
        // the parent is the right kind: mid -> root, leaf -> mid.
        for span in spans.iter().filter(|s| s.span_id != root.span_id) {
            let parent = spans
                .iter()
                .find(|p| p.span_id == span.parent_id)
                .unwrap_or_else(|| panic!("orphaned span {:?}", span.name));
            match span.name.as_str() {
                "tree.mid" => assert_eq!(parent.name, "tree.request"),
                "tree.leaf" => assert_eq!(parent.name, "tree.mid"),
                other => panic!("unexpected span {other:?} in request tree"),
            }
        }
    }

    // Scenario 2 — one request fanning out through the pool: tasks spawned
    // via `Scope::spawn` inherit the spawning thread's context, so the
    // worker-side spans must join the request's trace with the request span
    // as their parent, despite running on four different threads.
    let ctx = telemetry::TraceContext::new_root();
    let fan_trace = ctx.trace_id;
    {
        let _attached = ctx.attach();
        let _request = telemetry::span("fan.request");
        // The barrier forces the four children to be in flight at once, so
        // they provably run on four distinct threads rather than one fast
        // worker draining the queue serially.
        let barrier = std::sync::Barrier::new(WORKERS);
        pool.scope(|scope| {
            let barrier = &barrier;
            for _ in 0..WORKERS {
                scope.spawn(move || {
                    let _child = telemetry::span("fan.child");
                    barrier.wait();
                });
            }
        });
    }
    let spans = collector.trace_spans(fan_trace);
    assert_eq!(spans.len(), 1 + WORKERS);
    let root = spans.iter().find(|s| s.name == "fan.request").unwrap();
    let children: Vec<_> = spans.iter().filter(|s| s.name == "fan.child").collect();
    assert_eq!(children.len(), WORKERS);
    assert!(
        children.iter().all(|c| c.parent_id == root.span_id),
        "pool workers must parent to the request span"
    );
    let tids: std::collections::BTreeSet<u64> = children.iter().map(|c| c.tid).collect();
    assert!(
        tids.len() > 1,
        "fan-out should actually cross threads (got tids {tids:?})"
    );

    // Neither scenario's spans leaked into the other's trace.
    assert!(request_traces.iter().all(|&t| t != fan_trace));
    telemetry::clear_sink();
}

fn counter_of(snapshot: &Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Both export formats must parse at any point in time, not just at rest.
fn assert_valid_exports(snapshot: &Snapshot) {
    let text = snapshot.prometheus_text();
    if !text.is_empty() {
        gsu_serve::validate_exposition(&text).expect("valid Prometheus exposition");
    }
    let report = snapshot.run_report_json();
    assert!(report.starts_with("{\"schema\":\"gsu-telemetry-v3\""));
    assert_eq!(
        report.matches('{').count(),
        report.matches('}').count(),
        "unbalanced braces in run report"
    );
}
