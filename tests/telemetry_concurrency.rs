//! Concurrency contract of the telemetry collector: four pool workers emit
//! counters, observations, and spans while the main thread repeatedly calls
//! `Collector::snapshot()`. No emission may be lost, counters must be
//! monotone across snapshots, and both exported formats (Prometheus text
//! exposition, `gsu-telemetry-v2` run report) must stay well-formed at every
//! intermediate snapshot.
//!
//! One `#[test]` because the telemetry sink is process-global.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use telemetry::Snapshot;

const WORKERS: usize = 4;
const EMISSIONS_PER_WORKER: u64 = 2_000;

#[test]
fn concurrent_emission_loses_nothing_and_snapshots_stay_valid() {
    let collector = telemetry::Collector::install();
    let done = Arc::new(AtomicBool::new(false));

    // WORKERS + 1 slots: the scope's calling thread only drains tasks after
    // the closure returns, and the closure below runs the snapshot loop
    // until every emitter finishes.
    let pool = pool::Pool::new(WORKERS + 1);
    pool.scope(|scope| {
        let done = &done;
        for worker in 0..WORKERS {
            let done = done.clone();
            scope.spawn(move || {
                for i in 0..EMISSIONS_PER_WORKER {
                    telemetry::counter("conc.events", 1);
                    telemetry::gauge("conc.last_i", i as f64);
                    telemetry::observe("conc.value", (worker * 7 + 1) as f64);
                    if i % 500 == 0 {
                        let mut span = telemetry::span("conc.burst");
                        span.record("worker", worker as u64);
                    }
                }
                if worker == WORKERS - 1 {
                    // Not a synchronization barrier — just lets the snapshot
                    // loop below terminate promptly once traffic stops.
                    done.store(true, Ordering::Relaxed);
                }
            });
        }

        // Snapshot continuously while the workers hammer the sink.
        let mut last_events = 0u64;
        let mut snapshots = 0u64;
        while !done.load(Ordering::Relaxed) {
            let snapshot = collector.snapshot();
            let events = counter_of(&snapshot, "conc.events");
            assert!(
                events >= last_events,
                "counter went backwards: {last_events} -> {events}"
            );
            last_events = events;
            assert_valid_exports(&snapshot);
            snapshots += 1;
        }
        assert!(snapshots > 0, "snapshot loop never ran");
    });

    // Traffic has stopped (scope joined): the final snapshot must be exact.
    let snapshot = collector.snapshot();
    let total = WORKERS as u64 * EMISSIONS_PER_WORKER;
    assert_eq!(counter_of(&snapshot, "conc.events"), total);

    let hist = snapshot
        .histograms
        .iter()
        .find(|(name, _)| name == "conc.value")
        .map(|(_, h)| h)
        .expect("conc.value histogram");
    assert_eq!(hist.count, total);
    // Σ over workers of EMISSIONS_PER_WORKER * (7w + 1).
    let expected_sum: f64 = (0..WORKERS)
        .map(|w| EMISSIONS_PER_WORKER as f64 * (w * 7 + 1) as f64)
        .sum();
    assert!(
        (hist.sum - expected_sum).abs() < 1e-6 * expected_sum,
        "sum {} != {expected_sum}",
        hist.sum
    );
    assert_eq!(hist.min, 1.0);
    assert_eq!(hist.max, (7 * (WORKERS - 1) + 1) as f64);

    let spans = snapshot
        .spans
        .iter()
        .find(|(name, _)| name == "conc.burst")
        .map(|(_, s)| s)
        .expect("conc.burst spans");
    assert_eq!(
        spans.count,
        WORKERS as u64 * (EMISSIONS_PER_WORKER.div_ceil(500))
    );

    assert_valid_exports(&snapshot);
    telemetry::clear_sink();
}

fn counter_of(snapshot: &Snapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Both export formats must parse at any point in time, not just at rest.
fn assert_valid_exports(snapshot: &Snapshot) {
    let text = snapshot.prometheus_text();
    if !text.is_empty() {
        gsu_serve::validate_exposition(&text).expect("valid Prometheus exposition");
    }
    let report = snapshot.run_report_json();
    assert!(report.starts_with("{\"schema\":\"gsu-telemetry-v2\""));
    assert_eq!(
        report.matches('{').count(),
        report.matches('}').count(),
        "unbalanced braces in run report"
    );
}
