//! Integration tests: the analytic translation pipeline and the MDCD
//! discrete-event simulator agree.

use guarded_upgrade::prelude::*;

/// Scaled-down scenario where the event-exact engine is cheap.
fn small_params() -> GsuParams {
    GsuParams {
        theta: 50.0,
        lambda: 40.0,
        mu_new: 0.02,
        mu_old: 1e-7,
        coverage: 0.95,
        p_ext: 0.1,
        alpha: 200.0,
        beta: 200.0,
    }
}

#[test]
fn hybrid_and_exact_engines_agree_on_worth() {
    let params = small_params();
    let phi = 30.0;
    let cfg = SimConfig::new(params, phi).unwrap();
    let exact = MonteCarlo::new(cfg)
        .with_engine(EngineKind::Exact)
        .with_replications(2000)
        .with_seed(3)
        .run();
    let hybrid = MonteCarlo::new(cfg)
        .with_engine(EngineKind::Hybrid)
        .with_replications(2000)
        .with_seed(4)
        .run();
    let gap = (exact.mean_worth - hybrid.mean_worth).abs();
    let tol = 2.0 * (exact.worth_half_width_95 + hybrid.worth_half_width_95);
    assert!(
        gap <= tol,
        "worth gap {gap} exceeds tolerance {tol} (exact {}, hybrid {})",
        exact.mean_worth,
        hybrid.mean_worth
    );
    assert!((exact.p_s2 - hybrid.p_s2).abs() < 0.05);
    assert!((exact.p_s3 - hybrid.p_s3).abs() < 0.05);
}

#[test]
fn analytic_matches_simulation_under_matched_gamma() {
    // Mission scale: analytic Y vs hybrid Monte-Carlo with the analytic
    // pipeline's constant γ convention.
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params).unwrap();
    for phi in [3000.0, 7000.0] {
        let a = analysis.evaluate(phi).unwrap();
        let guarded = MonteCarlo::new(
            SimConfig::new(params, phi)
                .unwrap()
                .with_gamma(GammaMode::Constant(a.gamma)),
        )
        .with_replications(4000)
        .with_seed(21)
        .run();
        let unguarded = MonteCarlo::new(SimConfig::new(params, 0.0).unwrap())
            .with_replications(4000)
            .with_seed(22)
            .run();
        let ideal = 2.0 * params.theta;
        let y_sim = (ideal - unguarded.mean_worth) / (ideal - guarded.mean_worth);
        assert!(
            (a.y - y_sim).abs() / a.y < 0.06,
            "φ={phi}: analytic {} vs simulated {y_sim}",
            a.y
        );
    }
}

#[test]
fn simulated_path_probabilities_match_constituent_measures() {
    let params = GsuParams::paper_baseline();
    let phi = 6000.0;
    let analysis = GsuAnalysis::new(params).unwrap();
    let m = analysis.measures(phi).unwrap();
    let s = MonteCarlo::new(SimConfig::new(params, phi).unwrap())
        .with_replications(6000)
        .with_seed(77)
        .run();
    // P(S1) = P(X'_φ ∈ A'1)·P(X''_{θ−φ} ∈ A''1).
    let p_s1_analytic = m.p_a1_gop * m.p_a1_norm_rem;
    assert!(
        (s.p_s1 - p_s1_analytic).abs() < 0.03,
        "P(S1): simulated {} vs analytic {p_s1_analytic}",
        s.p_s1
    );
    // P(S2) ≈ ∫h · (1 − ∫f).
    let p_s2_analytic = m.i_h * (1.0 - m.i_f);
    assert!(
        (s.p_s2 - p_s2_analytic).abs() < 0.03,
        "P(S2): simulated {} vs analytic {p_s2_analytic}",
        s.p_s2
    );
}

#[test]
fn simulated_rho_matches_rmgp_solution() {
    let params = GsuParams::paper_baseline();
    let analysis = GsuAnalysis::new(params).unwrap();
    let (rho1_analytic, rho2_analytic) = analysis.rho();
    let s = MonteCarlo::new(SimConfig::new(params, 8000.0).unwrap())
        .with_replications(200)
        .with_seed(5)
        .run();
    let (rho1_sim, rho2_sim) = s.mean_rho.expect("guarded paths exist");
    assert!(
        (rho1_sim - rho1_analytic).abs() < 0.01,
        "ρ1: sim {rho1_sim} vs analytic {rho1_analytic}"
    );
    assert!(
        (rho2_sim - rho2_analytic).abs() < 0.02,
        "ρ2: sim {rho2_sim} vs analytic {rho2_analytic}"
    );
}

#[test]
fn estimate_y_confidence_interval_brackets_repeat_runs() {
    let params = small_params();
    let e1 = estimate_y(params, 30.0, 3000, 1).unwrap();
    let e2 = estimate_y(params, 30.0, 3000, 2).unwrap();
    assert!(
        (e1.y - e2.y).abs() <= 2.0 * (e1.half_width_95 + e2.half_width_95),
        "independent estimates too far apart: {} vs {}",
        e1.y,
        e2.y
    );
}
